//! Timestamps and durations of the timed asynchronous system model.
//!
//! The model distinguishes two notions of local time:
//!
//! * [`HwTime`] — the reading of a process's *hardware clock*: monotone,
//!   drifting (bounded by ρ), never adjusted, and *unsynchronized* across
//!   processes.
//! * [`SyncTime`] — the reading of the *synchronized* (logical) clock built
//!   by the fail-aware clock synchronization protocol. When a process is
//!   synchronized, its `SyncTime` deviates from any other synchronized
//!   process's by at most ε. All protocol timestamps (decision send
//!   timestamps, slot boundaries, message validity windows) are `SyncTime`.
//!
//! Both are microsecond counts in `i64`, which covers ±292 000 years —
//! plenty for simulation and deployment alike.

// tw-lint: allow-file(float-state) -- f64 appears only in as_*_f64 display/metrics
// conversions; all protocol arithmetic stays in integral microseconds.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! impl_instant {
    ($name:ident, $doc:literal) => {
        #[doc = $doc]
        #[derive(
            Debug,
            Clone,
            Copy,
            PartialEq,
            Eq,
            PartialOrd,
            Ord,
            Hash,
            Serialize,
            Deserialize,
            Default,
        )]
        pub struct $name(pub i64);

        impl $name {
            /// The origin of this time base.
            pub const ZERO: $name = $name(0);
            /// Largest representable instant (useful as "never" deadline).
            pub const MAX: $name = $name(i64::MAX);

            /// Construct from whole microseconds.
            #[inline]
            pub const fn from_micros(us: i64) -> Self {
                $name(us)
            }

            /// Construct from whole milliseconds.
            #[inline]
            pub const fn from_millis(ms: i64) -> Self {
                $name(ms * 1_000)
            }

            /// This instant as microseconds since the origin.
            #[inline]
            pub const fn as_micros(self) -> i64 {
                self.0
            }

            /// The earlier of two instants.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                if self <= other {
                    self
                } else {
                    other
                }
            }

            /// The later of two instants.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                if self >= other {
                    self
                } else {
                    other
                }
            }

            /// Duration elapsed since `earlier` (may be negative).
            #[inline]
            pub fn since(self, earlier: Self) -> Duration {
                Duration(self.0 - earlier.0)
            }
        }

        impl Add<Duration> for $name {
            type Output = $name;
            #[inline]
            fn add(self, d: Duration) -> $name {
                $name(self.0 + d.0)
            }
        }

        impl AddAssign<Duration> for $name {
            #[inline]
            fn add_assign(&mut self, d: Duration) {
                self.0 += d.0;
            }
        }

        impl Sub<Duration> for $name {
            type Output = $name;
            #[inline]
            fn sub(self, d: Duration) -> $name {
                $name(self.0 - d.0)
            }
        }

        impl SubAssign<Duration> for $name {
            #[inline]
            fn sub_assign(&mut self, d: Duration) {
                self.0 -= d.0;
            }
        }

        impl Sub<$name> for $name {
            type Output = Duration;
            #[inline]
            fn sub(self, other: $name) -> Duration {
                Duration(self.0 - other.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}us", self.0)
            }
        }
    };
}

impl_instant!(
    HwTime,
    "An instant on a process's local *hardware* clock (unsynchronized)."
);
impl_instant!(
    SyncTime,
    "An instant on the *synchronized* clock provided by fail-aware clock sync."
);

/// A span of time in microseconds. Shared between both time bases; the
/// small (bounded by ρ and ε) discrepancies between bases are accounted
/// for explicitly in the protocol constants, not in the type system.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Duration(pub i64);

impl Duration {
    /// The zero-length span.
    pub const ZERO: Duration = Duration(0);
    /// Largest representable span.
    pub const MAX: Duration = Duration(i64::MAX);

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: i64) -> Self {
        Duration(us)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: i64) -> Self {
        Duration(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: i64) -> Self {
        Duration(s * 1_000_000)
    }

    /// This span in whole microseconds.
    #[inline]
    pub const fn as_micros(self) -> i64 {
        self.0
    }

    /// This span in (fractional) milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This span in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// True when the span is negative.
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// The smaller of two spans.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, d: Duration) -> Duration {
        Duration(self.0 + d.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, d: Duration) -> Duration {
        Duration(self.0 - d.0)
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, d: Duration) {
        self.0 -= d.0;
    }
}

impl Mul<i64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, k: i64) -> Duration {
        Duration(self.0 * k)
    }
}

impl Div<i64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, k: i64) -> Duration {
        Duration(self.0 / k)
    }
}

impl Neg for Duration {
    type Output = Duration;
    #[inline]
    fn neg(self) -> Duration {
        Duration(-self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1_000_000 && self.0 % 1_000 == 0 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0.abs() >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_duration_arithmetic() {
        let t = SyncTime::from_millis(5);
        let d = Duration::from_millis(2);
        assert_eq!(t + d, SyncTime::from_millis(7));
        assert_eq!(t - d, SyncTime::from_millis(3));
        assert_eq!((t + d) - t, d);
        assert_eq!(t.since(t + d), -d);
    }

    #[test]
    fn duration_scaling() {
        let d = Duration::from_micros(300);
        assert_eq!(d * 4, Duration::from_micros(1200));
        assert_eq!((d * 4) / 2, Duration::from_micros(600));
    }

    #[test]
    fn min_max() {
        let a = SyncTime(4);
        let b = SyncTime(9);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(Duration(1).max(Duration(5)), Duration(5));
        assert_eq!(Duration(1).min(Duration(5)), Duration(1));
    }

    #[test]
    fn conversions() {
        assert_eq!(Duration::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(Duration::from_millis(1).as_micros(), 1_000);
        assert!((Duration::from_micros(1_500).as_millis_f64() - 1.5).abs() < 1e-12);
        assert_eq!(HwTime::from_millis(3).as_micros(), 3_000);
    }

    #[test]
    fn display() {
        assert_eq!(Duration::from_micros(12).to_string(), "12us");
        assert_eq!(Duration::from_micros(1500).to_string(), "1.500ms");
        assert_eq!(Duration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SyncTime(7).to_string(), "7us");
    }

    #[test]
    fn hw_and_sync_are_distinct_types() {
        // Purely a compile-shape test: since() stays within one base.
        let h = HwTime::from_micros(10);
        let s = SyncTime::from_micros(10);
        assert_eq!(h.since(HwTime::ZERO), Duration(10));
        assert_eq!(s.since(SyncTime::ZERO), Duration(10));
    }
}
