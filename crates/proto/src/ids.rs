//! Process, proposal and ordinal identifiers.
//!
//! The paper assumes a fixed *team* of `N` processes, cyclically ordered.
//! We number them `0..N-1` with [`ProcessId`]. A process that crashes and
//! recovers re-enters with a fresh [`Incarnation`] so that stale messages
//! from its previous life can be rejected.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of a team member (its rank in the cyclic order `0..N-1`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ProcessId(pub u16);

impl ProcessId {
    /// Rank as a `usize`, for indexing per-process tables.
    #[inline]
    pub fn rank(self) -> usize {
        self.0 as usize
    }

    /// The successor of this process in the cyclic order of a team of size
    /// `n` (the whole team, not a group — slot assignment is team-wide).
    #[inline]
    pub fn successor(self, n: usize) -> ProcessId {
        debug_assert!(n > 0 && self.rank() < n);
        ProcessId(((self.rank() + 1) % n) as u16)
    }

    /// The predecessor of this process in the cyclic order of a team of
    /// size `n`.
    #[inline]
    pub fn predecessor(self, n: usize) -> ProcessId {
        debug_assert!(n > 0 && self.rank() < n);
        ProcessId(((self.rank() + n - 1) % n) as u16)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u16> for ProcessId {
    fn from(v: u16) -> Self {
        ProcessId(v)
    }
}

/// Incarnation number of a process: bumped on every recovery from a crash,
/// so that each (process, incarnation) pair names one continuous life.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Incarnation(pub u32);

impl Incarnation {
    /// The next incarnation (after a recovery).
    #[inline]
    pub fn next(self) -> Incarnation {
        Incarnation(self.0 + 1)
    }
}

impl fmt::Display for Incarnation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// Ordinal associated to an update or membership change by a decider.
///
/// Ordinals are unique and dense: the decider assigns them by appending
/// descriptors to the oal, and the ordinal of an entry is the oal's base
/// ordinal plus its index. Note (paper §2, footnote 2): the *delivery*
/// order of updates is not necessarily the ordinal order.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Ordinal(pub u64);

impl Ordinal {
    /// The zero ordinal — used as the `hdo` of proposals that depend on
    /// nothing.
    pub const ZERO: Ordinal = Ordinal(0);

    /// The next ordinal.
    #[inline]
    pub fn next(self) -> Ordinal {
        Ordinal(self.0 + 1)
    }

    /// Ordinal distance (`self - earlier`), saturating at zero.
    #[inline]
    pub fn distance_from(self, earlier: Ordinal) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Ordinal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Identity of a proposal: the proposing process plus a per-sender sequence
/// number. Unlike ordinals (assigned late, by the decider), proposal ids
/// are known at propose time and are what the FIFO ("general") delivery
/// condition is defined over.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ProposalId {
    /// The proposing team member.
    pub proposer: ProcessId,
    /// Sequence number local to `proposer`, starting at 1 for its first
    /// proposal in the current incarnation.
    pub seq: u64,
}

impl ProposalId {
    /// Construct a proposal id.
    #[inline]
    pub fn new(proposer: ProcessId, seq: u64) -> Self {
        ProposalId { proposer, seq }
    }
}

impl fmt::Display for ProposalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.proposer, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successor_wraps_around() {
        assert_eq!(ProcessId(0).successor(3), ProcessId(1));
        assert_eq!(ProcessId(2).successor(3), ProcessId(0));
    }

    #[test]
    fn predecessor_wraps_around() {
        assert_eq!(ProcessId(0).predecessor(3), ProcessId(2));
        assert_eq!(ProcessId(1).predecessor(3), ProcessId(0));
    }

    #[test]
    fn successor_predecessor_inverse() {
        for n in 1..9usize {
            for r in 0..n {
                let p = ProcessId(r as u16);
                assert_eq!(p.successor(n).predecessor(n), p);
                assert_eq!(p.predecessor(n).successor(n), p);
            }
        }
    }

    #[test]
    fn ordinal_arithmetic() {
        assert_eq!(Ordinal(3).next(), Ordinal(4));
        assert_eq!(Ordinal(7).distance_from(Ordinal(3)), 4);
        assert_eq!(Ordinal(3).distance_from(Ordinal(7)), 0);
    }

    #[test]
    fn incarnation_next() {
        assert_eq!(Incarnation(0).next(), Incarnation(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(ProcessId(4).to_string(), "p4");
        assert_eq!(ProposalId::new(ProcessId(2), 9).to_string(), "p2:9");
        assert_eq!(Ordinal(11).to_string(), "#11");
    }
}
