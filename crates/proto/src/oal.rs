//! The *ordering and acknowledgement list* (oal).
//!
//! The oal is the heart of the timewheel broadcast/membership coupling
//! (paper §2): a sliding window of *descriptors*, one per broadcast update
//! or membership change, each implicitly numbered with a dense [`Ordinal`]
//! and carrying per-member acknowledgement bits. The rotating decider
//! appends descriptors (assigning ordinals), merges acknowledgements, and
//! prunes the stable prefix; every decision message carries the current
//! oal, so each member's copy is a recent snapshot of the decider chain's.
//!
//! Two structural facts the protocol relies on, both enforced/checked here:
//!
//! * **Density** — ordinals are assigned by appending, so the ordinals in
//!   an oal are a contiguous range `[base, next)`.
//! * **Prefix property** — any member's view of the oal is a pruned-prefix
//!   snapshot of the decider's: same descriptors at the same ordinals
//!   (ack bits may lag). [`Oal::agrees_with`] checks this.

use crate::ids::{Ordinal, ProcessId, ProposalId};
use crate::semantics::Semantics;
use crate::time::SyncTime;
use crate::view::View;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Per-member acknowledgement bits, indexed by team rank.
///
/// The team size is bounded by 64, generous for a membership protocol whose
/// message complexity is linear in the team size.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct AckBits(pub u64);

impl AckBits {
    /// No acknowledgements.
    pub const EMPTY: AckBits = AckBits(0);

    /// Maximum team size representable.
    pub const MAX_TEAM: usize = 64;

    /// Set the bit for `p`.
    #[inline]
    pub fn set(&mut self, p: ProcessId) {
        debug_assert!(p.rank() < Self::MAX_TEAM);
        self.0 |= 1 << p.rank();
    }

    /// Clear the bit for `p`.
    #[inline]
    pub fn clear(&mut self, p: ProcessId) {
        self.0 &= !(1 << p.rank());
    }

    /// Test the bit for `p`.
    #[inline]
    pub fn contains(&self, p: ProcessId) -> bool {
        self.0 & (1 << p.rank()) != 0
    }

    /// Union with another ack set.
    #[inline]
    pub fn merge(&mut self, other: AckBits) {
        self.0 |= other.0;
    }

    /// Number of acknowledging members.
    #[inline]
    pub fn count(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// How many members of `group` have acknowledged.
    pub fn count_in(&self, group: &View) -> usize {
        group.members.iter().filter(|p| self.contains(**p)).count()
    }

    /// True when a strict majority of `group` has acknowledged.
    pub fn majority_of(&self, group: &View) -> bool {
        self.count_in(group) * 2 > group.len()
    }

    /// True when every member of `group` has acknowledged.
    pub fn all_of(&self, group: &View) -> bool {
        group.members.iter().all(|p| self.contains(*p))
    }
}

impl FromIterator<ProcessId> for AckBits {
    fn from_iter<T: IntoIterator<Item = ProcessId>>(iter: T) -> Self {
        let mut b = AckBits::EMPTY;
        for p in iter {
            b.set(p);
        }
        b
    }
}

impl fmt::Display for AckBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "acks[")?;
        let mut first = true;
        for r in 0..Self::MAX_TEAM {
            if self.0 & (1 << r) != 0 {
                if !first {
                    write!(f, ",")?;
                }
                write!(f, "p{r}")?;
                first = false;
            }
        }
        write!(f, "]")
    }
}

/// What a descriptor describes: a broadcast update or a membership change.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DescriptorBody {
    /// A client update proposed by a team member.
    Update {
        /// Which proposal this descriptor orders.
        id: ProposalId,
        /// Highest dependency ordinal: the update may depend on every
        /// update with an ordinal ≤ `hdo` (paper §4.3).
        hdo: Ordinal,
        /// Delivery semantics the proposal was broadcast with.
        semantics: Semantics,
        /// Synchronized send timestamp (drives time-ordered delivery).
        send_ts: SyncTime,
    },
    /// A membership change: installation of a new view.
    Membership(View),
}

impl DescriptorBody {
    /// The proposal id, if this is an update descriptor.
    pub fn proposal_id(&self) -> Option<ProposalId> {
        match self {
            DescriptorBody::Update { id, .. } => Some(*id),
            DescriptorBody::Membership(_) => None,
        }
    }
}

/// One oal entry. Its ordinal is implicit in its position (see [`Oal`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Descriptor {
    /// The ordered thing.
    pub body: DescriptorBody,
    /// Which team members have acknowledged receiving it.
    pub acks: AckBits,
    /// Marked by a new decider when the corresponding update must never be
    /// delivered (paper §4.3). Undeliverable descriptors keep their
    /// ordinal (so ordinals stay dense) and are pruned at the head.
    pub undeliverable: bool,
}

impl Descriptor {
    /// A fresh update descriptor acknowledged only by `by`.
    pub fn update(
        id: ProposalId,
        hdo: Ordinal,
        semantics: Semantics,
        send_ts: SyncTime,
        by: ProcessId,
    ) -> Self {
        let mut acks = AckBits::EMPTY;
        acks.set(by);
        Descriptor {
            body: DescriptorBody::Update {
                id,
                hdo,
                semantics,
                send_ts,
            },
            acks,
            undeliverable: false,
        }
    }

    /// A fresh membership descriptor.
    pub fn membership(view: View, by: ProcessId) -> Self {
        let mut acks = AckBits::EMPTY;
        acks.set(by);
        Descriptor {
            body: DescriptorBody::Membership(view),
            acks,
            undeliverable: false,
        }
    }
}

/// The ordering and acknowledgement list: a window of descriptors over the
/// dense ordinal range `[base(), next_ordinal())`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Oal {
    /// Ordinal that will be assigned to the next appended descriptor.
    next: Ordinal,
    /// Window entries; entry `i` has ordinal `next - len + i`.
    entries: VecDeque<Descriptor>,
}

impl Default for Oal {
    fn default() -> Self {
        Oal {
            // Ordinal 0 is reserved as the "depends on nothing" hdo.
            next: Ordinal(1),
            entries: VecDeque::new(),
        }
    }
}

impl Oal {
    /// An empty oal whose first assigned ordinal will be 1.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ordinal of the head entry (== `next_ordinal()` when empty).
    #[inline]
    pub fn base(&self) -> Ordinal {
        Ordinal(self.next.0 - self.entries.len() as u64)
    }

    /// Ordinal the next appended descriptor will get.
    #[inline]
    pub fn next_ordinal(&self) -> Ordinal {
        self.next
    }

    /// Highest assigned ordinal so far (`None` before the first append —
    /// across the lifetime of this copy, including pruned entries).
    #[inline]
    pub fn highest_ordinal(&self) -> Option<Ordinal> {
        if self.next.0 > 1 {
            Some(Ordinal(self.next.0 - 1))
        } else {
            None
        }
    }

    /// Number of descriptors currently in the window.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the window is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Append a descriptor, assigning it the next ordinal.
    pub fn append(&mut self, d: Descriptor) -> Ordinal {
        let o = self.next;
        self.entries.push_back(d);
        self.next = self.next.next();
        o
    }

    /// The descriptor at `ordinal`, if it is inside the window.
    pub fn get(&self, ordinal: Ordinal) -> Option<&Descriptor> {
        let base = self.base();
        if ordinal < base || ordinal >= self.next {
            return None;
        }
        self.entries.get((ordinal.0 - base.0) as usize)
    }

    /// Mutable access to the descriptor at `ordinal`.
    pub fn get_mut(&mut self, ordinal: Ordinal) -> Option<&mut Descriptor> {
        let base = self.base();
        if ordinal < base || ordinal >= self.next {
            return None;
        }
        self.entries.get_mut((ordinal.0 - base.0) as usize)
    }

    /// Iterate `(ordinal, descriptor)` pairs over the window.
    pub fn iter(&self) -> impl Iterator<Item = (Ordinal, &Descriptor)> {
        let base = self.base();
        self.entries
            .iter()
            .enumerate()
            .map(move |(i, d)| (Ordinal(base.0 + i as u64), d))
    }

    /// Iterate mutably over `(ordinal, descriptor)` pairs.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Ordinal, &mut Descriptor)> {
        let base = self.base();
        self.entries
            .iter_mut()
            .enumerate()
            .map(move |(i, d)| (Ordinal(base.0 + i as u64), d))
    }

    /// Find the ordinal assigned to proposal `id`, if present in the window.
    pub fn ordinal_of(&self, id: ProposalId) -> Option<Ordinal> {
        self.iter()
            .find(|(_, d)| d.body.proposal_id() == Some(id))
            .map(|(o, _)| o)
    }

    /// Record that `p` acknowledged the descriptor at `ordinal`.
    /// Returns false if the ordinal is outside the window (already pruned
    /// — which itself implies stability — or not yet assigned).
    pub fn ack(&mut self, ordinal: Ordinal, p: ProcessId) -> bool {
        if let Some(d) = self.get_mut(ordinal) {
            d.acks.set(p);
            true
        } else {
            false
        }
    }

    /// Merge another snapshot's acknowledgement bits into this oal.
    ///
    /// Only overlapping ordinals are merged; entries the other snapshot has
    /// pruned were already stable there. Descriptor bodies must agree on
    /// the overlap (the prefix property) — violations indicate a protocol
    /// bug and are reported via `Err` with the first mismatching ordinal.
    pub fn merge_acks(&mut self, other: &Oal) -> Result<(), Ordinal> {
        for (o, theirs) in other.iter() {
            if let Some(mine) = self.get_mut(o) {
                if mine.body != theirs.body {
                    return Err(o);
                }
                mine.acks.merge(theirs.acks);
                mine.undeliverable |= theirs.undeliverable;
            }
        }
        Ok(())
    }

    /// Adopt `other` wholesale when it extends further than this copy
    /// (e.g. on receiving a decision message): keeps whichever snapshot
    /// has assigned more ordinals, merging ack bits from the other.
    ///
    /// Returns `Err` on a prefix violation.
    pub fn adopt_latest(&mut self, other: &Oal) -> Result<(), Ordinal> {
        if other.next >= self.next {
            let mut newer = other.clone();
            newer.merge_acks(self)?;
            *self = newer;
        } else {
            self.merge_acks(other)?;
        }
        Ok(())
    }

    /// True when the descriptor at `ordinal` has been acknowledged by all
    /// members of `group` (is *stable*), or has already been pruned.
    pub fn is_stable(&self, ordinal: Ordinal, group: &View) -> bool {
        if ordinal < self.base() {
            return ordinal.0 >= 1; // pruned ⇒ was stable
        }
        match self.get(ordinal) {
            Some(d) => d.undeliverable || d.acks.all_of(group),
            None => false,
        }
    }

    /// True when every descriptor with ordinal ≤ `ordinal` is stable.
    pub fn stable_through(&self, ordinal: Ordinal, group: &View) -> bool {
        let mut o = self.base();
        if ordinal < o {
            return true;
        }
        while o <= ordinal {
            if !self.is_stable(o, group) {
                return false;
            }
            o = o.next();
        }
        true
    }

    /// Pop stable head descriptors (acked by all of `group`, or marked
    /// undeliverable), returning them with their ordinals. This is the
    /// decider-side pruning that keeps the window bounded.
    pub fn prune_stable(&mut self, group: &View) -> Vec<(Ordinal, Descriptor)> {
        let mut out = Vec::new();
        while let Some(head) = self.entries.front() {
            if head.undeliverable || head.acks.all_of(group) {
                let o = self.base();
                out.push((o, self.entries.pop_front().expect("non-empty")));
            } else {
                break;
            }
        }
        out
    }

    /// Check the prefix property against a longer (or equal) snapshot:
    /// every descriptor in `self`'s window that also lies in `longer`'s
    /// window must have an identical body. Ack bits are allowed to differ.
    pub fn agrees_with(&self, longer: &Oal) -> bool {
        self.iter().all(|(o, d)| match longer.get(o) {
            Some(ld) => ld.body == d.body,
            None => true, // pruned there or not yet assigned there
        })
    }

    /// Mark the descriptor at `ordinal` undeliverable. Returns whether the
    /// ordinal was inside the window.
    pub fn mark_undeliverable(&mut self, ordinal: Ordinal) -> bool {
        if let Some(d) = self.get_mut(ordinal) {
            d.undeliverable = true;
            true
        } else {
            false
        }
    }

    /// Rebuild an oal from its wire parts: the next ordinal to assign and
    /// the current window entries (whose ordinals are implicit). Used by
    /// the codec; `entries.len()` must not exceed `next - 1`.
    pub fn restore(&mut self, next: Ordinal, entries: Vec<Descriptor>) {
        debug_assert!((entries.len() as u64) < next.0.max(1) + 1);
        self.next = next;
        self.entries = entries.into();
    }

    /// The highest ordinal `o` such that every descriptor ≤ `o` is stable
    /// in `group` (the stability frontier). `Ordinal::ZERO` when nothing
    /// is stable.
    pub fn stability_frontier(&self, group: &View) -> Ordinal {
        let mut frontier = Ordinal(self.base().0.saturating_sub(1));
        let mut o = self.base();
        while o < self.next {
            if self.is_stable(o, group) {
                frontier = o;
                o = o.next();
            } else {
                break;
            }
        }
        frontier
    }
}

impl fmt::Display for Oal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oal[{}..{})", self.base().0, self.next.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::ViewId;

    fn group(ids: &[u16]) -> View {
        View::new(
            ViewId::new(1, ProcessId(ids[0])),
            ids.iter().map(|&i| ProcessId(i)),
        )
    }

    fn upd(p: u16, seq: u64) -> Descriptor {
        Descriptor::update(
            ProposalId::new(ProcessId(p), seq),
            Ordinal::ZERO,
            Semantics::UNORDERED_WEAK,
            SyncTime::ZERO,
            ProcessId(p),
        )
    }

    #[test]
    fn append_assigns_dense_ordinals() {
        let mut oal = Oal::new();
        assert_eq!(oal.append(upd(0, 1)), Ordinal(1));
        assert_eq!(oal.append(upd(1, 1)), Ordinal(2));
        assert_eq!(oal.append(upd(0, 2)), Ordinal(3));
        assert_eq!(oal.base(), Ordinal(1));
        assert_eq!(oal.next_ordinal(), Ordinal(4));
        assert_eq!(oal.highest_ordinal(), Some(Ordinal(3)));
        assert_eq!(oal.len(), 3);
    }

    #[test]
    fn get_respects_window() {
        let mut oal = Oal::new();
        oal.append(upd(0, 1));
        assert!(oal.get(Ordinal(0)).is_none());
        assert!(oal.get(Ordinal(1)).is_some());
        assert!(oal.get(Ordinal(2)).is_none());
    }

    #[test]
    fn ordinal_of_finds_proposals() {
        let mut oal = Oal::new();
        oal.append(upd(0, 1));
        oal.append(upd(2, 7));
        assert_eq!(
            oal.ordinal_of(ProposalId::new(ProcessId(2), 7)),
            Some(Ordinal(2))
        );
        assert_eq!(oal.ordinal_of(ProposalId::new(ProcessId(2), 8)), None);
    }

    #[test]
    fn stability_and_pruning() {
        let g = group(&[0, 1, 2]);
        let mut oal = Oal::new();
        let o1 = oal.append(upd(0, 1));
        let o2 = oal.append(upd(1, 1));
        assert!(!oal.is_stable(o1, &g));
        oal.ack(o1, ProcessId(1));
        oal.ack(o1, ProcessId(2));
        assert!(oal.is_stable(o1, &g));
        assert!(!oal.stable_through(o2, &g));
        let pruned = oal.prune_stable(&g);
        assert_eq!(pruned.len(), 1);
        assert_eq!(pruned[0].0, o1);
        assert_eq!(oal.base(), o2);
        // Pruned ordinals still count as stable.
        assert!(oal.is_stable(o1, &g));
    }

    #[test]
    fn undeliverable_counts_as_stable_for_pruning() {
        let g = group(&[0, 1]);
        let mut oal = Oal::new();
        let o1 = oal.append(upd(0, 1));
        oal.mark_undeliverable(o1);
        let pruned = oal.prune_stable(&g);
        assert_eq!(pruned.len(), 1);
        assert!(pruned[0].1.undeliverable);
    }

    #[test]
    fn merge_acks_unions_bits() {
        let mut a = Oal::new();
        let o1 = a.append(upd(0, 1));
        let mut b = a.clone();
        a.ack(o1, ProcessId(1));
        b.ack(o1, ProcessId(2));
        a.merge_acks(&b).unwrap();
        let d = a.get(o1).unwrap();
        assert!(d.acks.contains(ProcessId(0)));
        assert!(d.acks.contains(ProcessId(1)));
        assert!(d.acks.contains(ProcessId(2)));
    }

    #[test]
    fn merge_acks_detects_prefix_violation() {
        let mut a = Oal::new();
        a.append(upd(0, 1));
        let mut b = Oal::new();
        b.append(upd(5, 9));
        assert_eq!(a.merge_acks(&b), Err(Ordinal(1)));
        assert!(!a.agrees_with(&b));
    }

    #[test]
    fn adopt_latest_prefers_longer() {
        let mut a = Oal::new();
        let o1 = a.append(upd(0, 1));
        let mut b = a.clone();
        b.append(upd(1, 1));
        a.ack(o1, ProcessId(3));
        a.adopt_latest(&b).unwrap();
        assert_eq!(a.len(), 2);
        // a's ack on o1 survived the adoption.
        assert!(a.get(o1).unwrap().acks.contains(ProcessId(3)));
    }

    #[test]
    fn agrees_with_pruned_prefix() {
        let g = group(&[0]);
        let mut long = Oal::new();
        let o1 = long.append(upd(0, 1));
        long.append(upd(0, 2));
        let short = long.clone();
        long.ack(o1, ProcessId(0));
        long.prune_stable(&g);
        // `short` still holds o1; `long` pruned it. Both directions agree.
        assert!(short.agrees_with(&long));
        assert!(long.agrees_with(&short));
    }

    #[test]
    fn stability_frontier_walks_prefix() {
        let g = group(&[0, 1]);
        let mut oal = Oal::new();
        let o1 = oal.append(upd(0, 1));
        let o2 = oal.append(upd(0, 2));
        let o3 = oal.append(upd(0, 3));
        oal.ack(o1, ProcessId(1));
        oal.ack(o3, ProcessId(1));
        assert_eq!(oal.stability_frontier(&g), o1);
        oal.ack(o2, ProcessId(1));
        assert_eq!(oal.stability_frontier(&g), o3);
    }

    #[test]
    fn ackbits_set_clear_count() {
        let mut b = AckBits::EMPTY;
        b.set(ProcessId(0));
        b.set(ProcessId(5));
        assert_eq!(b.count(), 2);
        assert!(b.contains(ProcessId(5)));
        b.clear(ProcessId(5));
        assert!(!b.contains(ProcessId(5)));
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn ackbits_group_queries() {
        let g = group(&[0, 1, 2]);
        let b: AckBits = [ProcessId(0), ProcessId(1)].into_iter().collect();
        assert_eq!(b.count_in(&g), 2);
        assert!(b.majority_of(&g));
        assert!(!b.all_of(&g));
        let all: AckBits = g.members.iter().copied().collect();
        assert!(all.all_of(&g));
    }

    #[test]
    fn ackbits_display() {
        let b: AckBits = [ProcessId(1), ProcessId(3)].into_iter().collect();
        assert_eq!(b.to_string(), "acks[p1,p3]");
    }
}
