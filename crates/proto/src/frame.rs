//! Zero-copy framed wire format (wire version 2).
//!
//! The hot-path replacement for the fixed-width [`codec`](crate::codec)
//! format: a datagram is a **version byte** followed by one or more
//! **length-prefixed LEB128 frames**, each frame holding exactly one
//! [`Msg`] encoded with variable-length integers. Batching many messages
//! into one datagram is what lets the runtime amortize one syscall over a
//! whole tick's traffic; varints are what keep the common small ordinals,
//! ranks and sequence numbers at one byte each.
//!
//! ```text
//! datagram := version-byte frame*
//! frame    := len:uvarint body          (len = |body| in bytes)
//! body     := tag:u8 fields*            (same tags/field order as v1)
//! uvarint  := unsigned LEB128, ≤ 10 bytes
//! ivarint  := zigzag(i64) as uvarint
//! ```
//!
//! Encoding goes through a [`WireCursor`] writing into a **caller-owned
//! `Vec<u8>` scratch** that is reused across sends — steady-state sending
//! allocates nothing. Decoding goes through a [`FrameRef`], a borrowed
//! cursor over `&[u8]`: parsing never copies the datagram; only the
//! variable-length payload fields of an owned [`Msg`] are copied out of
//! the frame at the very end.
//!
//! The encoder emits frame length prefixes as **padded 4-byte LEB128**
//! (continuation bits set on the first three bytes) so a frame can be
//! length-patched in place after its body is written, keeping the whole
//! datagram in one buffer. LEB128 tolerates such non-canonical encodings;
//! the decoder accepts any valid LEB128 length.
//!
//! Version policy: a v2 datagram's first byte is [`VERSION_BYTE`]
//! (`0xD0 | version`). v1 messages began with a variant tag `0..=7`, so
//! the two can never be confused. Receivers reject any other leading byte
//! with [`WireError::BadVersion`] — there is no silent fallback; see
//! DESIGN.md §12 for the compatibility policy.

use crate::codec::WireError;
use crate::ids::{Incarnation, Ordinal, ProcessId, ProposalId};
use crate::messages::{
    ClockSyncMsg, Decision, Join, Msg, Nack, NoDecision, Proposal, Reconfig, StateTransfer,
    UpdateDesc,
};
use crate::oal::{AckBits, Descriptor, DescriptorBody, Oal};
use crate::semantics::{Atomicity, Ordering, Semantics};
use crate::time::{HwTime, SyncTime};
use crate::view::{View, ViewId};
use bytes::Bytes;

/// Current wire format version.
pub const WIRE_VERSION: u8 = 2;

/// First byte of every framed datagram: `0xD0 | WIRE_VERSION`. The high
/// nibble keeps it out of the v1 tag space (`0..=7`).
pub const VERSION_BYTE: u8 = 0xD0 | WIRE_VERSION;

/// Sanity cap on a single frame's body length (bytes). Also the largest
/// value the padded 4-byte length prefix can carry.
pub const MAX_FRAME_LEN: usize = (1 << 28) - 1;

/// Sanity cap on any decoded sequence length (items, not bytes).
const MAX_SEQ: usize = 1 << 20;

/// Longest legal LEB128 encoding of a u64.
const MAX_VARINT_BYTES: usize = 10;

// ---------------------------------------------------------------------------
// varint primitives
// ---------------------------------------------------------------------------

/// Append `v` to `buf` as unsigned LEB128 (1–10 bytes).
#[inline]
pub fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Zigzag-map a signed value so small magnitudes encode small.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Decode an unsigned LEB128 value from the front of `buf`.
/// Returns `(value, bytes_consumed)`.
#[inline]
pub fn read_uvarint(buf: &[u8], what: &'static str) -> Result<(u64, usize), WireError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate().take(MAX_VARINT_BYTES) {
        let data = (byte & 0x7F) as u64;
        // The 10th byte may only contribute the low bit of the 64-bit
        // value; anything more overflows.
        if shift == 63 && data > 1 {
            return Err(WireError::TooLong {
                what,
                len: usize::MAX,
            });
        }
        value |= data << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    if buf.len() < MAX_VARINT_BYTES {
        Err(WireError::UnexpectedEof { what })
    } else {
        // 10 continuation bytes and still going: not a valid u64.
        Err(WireError::TooLong {
            what,
            len: usize::MAX,
        })
    }
}

// ---------------------------------------------------------------------------
// WireCursor — the writer
// ---------------------------------------------------------------------------

/// Append-only encoder over a caller-owned `Vec<u8>` scratch.
///
/// The scratch is cleared by the *owner* (e.g. [`FrameBuilder::reset`]),
/// not the cursor, so one allocation serves many sends. All `put_*`
/// methods append; [`WireCursor::begin_frame`]/[`WireCursor::end_frame`]
/// bracket a frame whose length is patched in place when it closes.
pub struct WireCursor<'a> {
    buf: &'a mut Vec<u8>,
}

/// Handle returned by [`WireCursor::begin_frame`], consumed by
/// [`WireCursor::end_frame`].
#[derive(Debug)]
#[must_use = "an open frame must be closed with end_frame"]
pub struct FrameToken {
    len_at: usize,
}

impl<'a> WireCursor<'a> {
    /// Wrap a scratch buffer. Existing contents are kept (the cursor
    /// appends), so a datagram can be built incrementally.
    pub fn new(buf: &'a mut Vec<u8>) -> Self {
        WireCursor { buf }
    }

    /// Bytes written so far (including anything already in the scratch).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when the scratch is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one raw byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append an unsigned LEB128 varint.
    #[inline]
    pub fn put_uvarint(&mut self, v: u64) {
        put_uvarint(self.buf, v);
    }

    /// Append a zigzag signed LEB128 varint.
    #[inline]
    pub fn put_ivarint(&mut self, v: i64) {
        put_uvarint(self.buf, zigzag(v));
    }

    /// Append a length-prefixed byte string (uvarint length + bytes).
    #[inline]
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_uvarint(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Append `true`/`false` as one byte.
    #[inline]
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Open a frame: reserves a padded 4-byte LEB128 length prefix and
    /// returns the token [`WireCursor::end_frame`] needs to patch it.
    pub fn begin_frame(&mut self) -> FrameToken {
        let len_at = self.buf.len();
        self.buf.extend_from_slice(&[0x80, 0x80, 0x80, 0x00]);
        FrameToken { len_at }
    }

    /// Close a frame: patch its length prefix with the number of body
    /// bytes written since [`WireCursor::begin_frame`].
    ///
    /// # Panics
    /// If the body exceeds [`MAX_FRAME_LEN`] — a frame that large cannot
    /// be a datagram and indicates a logic error in the caller.
    pub fn end_frame(&mut self, token: FrameToken) {
        let body_len = self.buf.len() - token.len_at - 4;
        assert!(body_len <= MAX_FRAME_LEN, "frame body exceeds MAX_FRAME_LEN");
        let len = body_len as u32;
        self.buf[token.len_at] = (len & 0x7F) as u8 | 0x80;
        self.buf[token.len_at + 1] = ((len >> 7) & 0x7F) as u8 | 0x80;
        self.buf[token.len_at + 2] = ((len >> 14) & 0x7F) as u8 | 0x80;
        self.buf[token.len_at + 3] = ((len >> 21) & 0x7F) as u8;
    }
}

// ---------------------------------------------------------------------------
// FrameRef — the borrowed reader
// ---------------------------------------------------------------------------

/// A borrowed decoding cursor over `&[u8]` — one frame's body, or any
/// byte string being decoded in place.
///
/// Nothing is copied while parsing: [`FrameRef::take`] returns subslices
/// of the original datagram. Only when an owned [`Msg`] is materialized
/// are its payload fields ([`Bytes`]) copied out.
#[derive(Debug, Clone, Copy)]
pub struct FrameRef<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FrameRef<'a> {
    /// Wrap a byte string.
    pub fn new(buf: &'a [u8]) -> Self {
        FrameRef { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the whole frame was consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// The full underlying frame body (position-independent).
    pub fn as_slice(&self) -> &'a [u8] {
        self.buf
    }

    /// Consume `n` bytes, returning them as a borrowed subslice.
    #[inline]
    pub fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof { what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Consume one byte.
    #[inline]
    pub fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        let s = self.take(1, what)?;
        Ok(s[0])
    }

    /// Consume an unsigned LEB128 varint.
    #[inline]
    pub fn uvarint(&mut self, what: &'static str) -> Result<u64, WireError> {
        let (v, n) = read_uvarint(&self.buf[self.pos..], what)?;
        self.pos += n;
        Ok(v)
    }

    /// Consume a zigzag signed LEB128 varint.
    #[inline]
    pub fn ivarint(&mut self, what: &'static str) -> Result<i64, WireError> {
        Ok(unzigzag(self.uvarint(what)?))
    }

    /// Consume a `u64` varint and narrow it, rejecting out-of-range.
    #[inline]
    fn narrow<T: TryFrom<u64>>(&mut self, what: &'static str) -> Result<T, WireError> {
        let v = self.uvarint(what)?;
        T::try_from(v).map_err(|_| WireError::TooLong {
            what,
            len: usize::MAX,
        })
    }

    /// Consume a length-prefixed byte string as a borrowed subslice.
    #[inline]
    pub fn bytes(&mut self, what: &'static str) -> Result<&'a [u8], WireError> {
        let len = self.uvarint(what)? as usize;
        if len > MAX_FRAME_LEN {
            return Err(WireError::TooLong { what, len });
        }
        self.take(len, what)
    }

    /// Consume a boolean byte.
    #[inline]
    pub fn bool(&mut self, what: &'static str) -> Result<bool, WireError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { what, tag }),
        }
    }

    /// Consume a sequence count, capped at the sanity limit.
    #[inline]
    fn seq_len(&mut self, what: &'static str) -> Result<usize, WireError> {
        let len = self.uvarint(what)? as usize;
        if len > MAX_SEQ {
            return Err(WireError::TooLong { what, len });
        }
        Ok(len)
    }
}

// ---------------------------------------------------------------------------
// Datagram framing
// ---------------------------------------------------------------------------

/// Builds multi-frame datagrams into a reusable scratch buffer.
///
/// One builder lives per sender; [`FrameBuilder::reset`] rewinds it
/// without freeing, so steady-state encoding allocates nothing.
#[derive(Debug, Default)]
pub struct FrameBuilder {
    buf: Vec<u8>,
    frames: usize,
}

impl FrameBuilder {
    /// An empty builder (no datagram open).
    pub fn new() -> Self {
        FrameBuilder {
            buf: Vec::with_capacity(1500),
            frames: 0,
        }
    }

    /// Start a fresh datagram, reusing the allocation.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.buf.push(VERSION_BYTE);
        self.frames = 0;
    }

    /// Append one message as a frame. Starts the datagram if needed.
    pub fn push_msg(&mut self, msg: &Msg) {
        if self.buf.is_empty() {
            self.reset();
        }
        let mut w = WireCursor::new(&mut self.buf);
        let token = w.begin_frame();
        encode_msg(msg, &mut w);
        w.end_frame(token);
        self.frames += 1;
    }

    /// Frames in the current datagram.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// True when no frame has been pushed since the last reset.
    pub fn is_empty(&self) -> bool {
        self.frames == 0
    }

    /// The encoded datagram (version byte + frames).
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Iterator over the frames of one datagram, yielding borrowed
/// [`FrameRef`] cursors positioned at each frame body.
pub struct FrameIter<'a> {
    rest: &'a [u8],
    failed: bool,
}

impl<'a> Iterator for FrameIter<'a> {
    type Item = Result<FrameRef<'a>, WireError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.rest.is_empty() {
            return None;
        }
        let (len, n) = match read_uvarint(self.rest, "frame length") {
            Ok(v) => v,
            Err(e) => {
                self.failed = true;
                return Some(Err(e));
            }
        };
        let len = len as usize;
        if len > MAX_FRAME_LEN {
            self.failed = true;
            return Some(Err(WireError::TooLong {
                what: "frame length",
                len,
            }));
        }
        if self.rest.len() - n < len {
            self.failed = true;
            return Some(Err(WireError::UnexpectedEof { what: "frame body" }));
        }
        let body = &self.rest[n..n + len];
        self.rest = &self.rest[n + len..];
        Some(Ok(FrameRef::new(body)))
    }
}

/// Open a framed datagram: check the version byte and return the frame
/// iterator. Rejects unknown versions — including v1 messages, whose
/// leading tag byte is outside the version space.
pub fn open_datagram(dgram: &[u8]) -> Result<FrameIter<'_>, WireError> {
    let Some((&first, rest)) = dgram.split_first() else {
        return Err(WireError::UnexpectedEof { what: "datagram" });
    };
    if first != VERSION_BYTE {
        return Err(WireError::BadVersion { found: first });
    }
    Ok(FrameIter {
        rest,
        failed: false,
    })
}

/// Decode every message of a framed datagram. The returned messages own
/// their payloads (copied per field); everything else decodes straight
/// off the borrowed input. A datagram with zero frames is an error —
/// senders never emit one, so it can only be truncation.
pub fn decode_datagram(dgram: &[u8]) -> Result<Vec<Msg>, WireError> {
    let mut out = Vec::new();
    for frame in open_datagram(dgram)? {
        let mut f = frame?;
        let msg = decode_msg(&mut f)?;
        if !f.is_exhausted() {
            return Err(WireError::TrailingBytes {
                remaining: f.remaining(),
            });
        }
        out.push(msg);
    }
    if out.is_empty() {
        return Err(WireError::UnexpectedEof { what: "datagram" });
    }
    Ok(out)
}

/// Encode one message as a complete single-frame datagram (convenience
/// for paths without a long-lived [`FrameBuilder`]).
pub fn encode_single(msg: &Msg) -> Vec<u8> {
    let mut b = FrameBuilder::new();
    b.push_msg(msg);
    b.bytes().to_vec()
}

// ---------------------------------------------------------------------------
// v2 message codec
// ---------------------------------------------------------------------------

fn put_pid(w: &mut WireCursor, p: ProcessId) {
    w.put_uvarint(p.0 as u64);
}

fn get_pid(f: &mut FrameRef<'_>) -> Result<ProcessId, WireError> {
    Ok(ProcessId(f.narrow::<u16>("process-id")?))
}

fn put_proposal_id(w: &mut WireCursor, id: &ProposalId) {
    put_pid(w, id.proposer);
    w.put_uvarint(id.seq);
}

fn get_proposal_id(f: &mut FrameRef<'_>) -> Result<ProposalId, WireError> {
    Ok(ProposalId {
        proposer: get_pid(f)?,
        seq: f.uvarint("proposal-seq")?,
    })
}

fn put_semantics(w: &mut WireCursor, s: &Semantics) {
    w.put_u8(match s.ordering {
        Ordering::Unordered => 0,
        Ordering::Total => 1,
        Ordering::Time => 2,
    });
    w.put_u8(match s.atomicity {
        Atomicity::Weak => 0,
        Atomicity::Strong => 1,
        Atomicity::Strict => 2,
    });
}

fn get_semantics(f: &mut FrameRef<'_>) -> Result<Semantics, WireError> {
    let ordering = match f.u8("ordering")? {
        0 => Ordering::Unordered,
        1 => Ordering::Total,
        2 => Ordering::Time,
        tag => {
            return Err(WireError::BadTag {
                what: "ordering",
                tag,
            })
        }
    };
    let atomicity = match f.u8("atomicity")? {
        0 => Atomicity::Weak,
        1 => Atomicity::Strong,
        2 => Atomicity::Strict,
        tag => {
            return Err(WireError::BadTag {
                what: "atomicity",
                tag,
            })
        }
    };
    Ok(Semantics {
        ordering,
        atomicity,
    })
}

fn put_view_id(w: &mut WireCursor, id: &ViewId) {
    w.put_uvarint(id.seq);
    put_pid(w, id.creator);
}

fn get_view_id(f: &mut FrameRef<'_>) -> Result<ViewId, WireError> {
    Ok(ViewId {
        seq: f.uvarint("view-seq")?,
        creator: get_pid(f)?,
    })
}

fn put_view(w: &mut WireCursor, v: &View) {
    put_view_id(w, &v.id);
    let members = v.member_vec();
    w.put_uvarint(members.len() as u64);
    for m in members {
        put_pid(w, m);
    }
}

fn get_view(f: &mut FrameRef<'_>) -> Result<View, WireError> {
    let id = get_view_id(f)?;
    let len = f.seq_len("view members")?;
    let mut members = Vec::with_capacity(len.min(1024));
    for _ in 0..len {
        members.push(get_pid(f)?);
    }
    Ok(View::new(id, members))
}

fn put_update_desc(w: &mut WireCursor, d: &UpdateDesc) {
    put_proposal_id(w, &d.id);
    w.put_uvarint(d.hdo.0);
    put_semantics(w, &d.semantics);
    w.put_ivarint(d.send_ts.0);
}

fn get_update_desc(f: &mut FrameRef<'_>) -> Result<UpdateDesc, WireError> {
    Ok(UpdateDesc {
        id: get_proposal_id(f)?,
        hdo: Ordinal(f.uvarint("hdo")?),
        semantics: get_semantics(f)?,
        send_ts: SyncTime(f.ivarint("send-ts")?),
    })
}

fn put_descriptor(w: &mut WireCursor, d: &Descriptor) {
    match &d.body {
        DescriptorBody::Update {
            id,
            hdo,
            semantics,
            send_ts,
        } => {
            w.put_u8(0);
            put_proposal_id(w, id);
            w.put_uvarint(hdo.0);
            put_semantics(w, semantics);
            w.put_ivarint(send_ts.0);
        }
        DescriptorBody::Membership(view) => {
            w.put_u8(1);
            put_view(w, view);
        }
    }
    w.put_uvarint(d.acks.0);
    w.put_bool(d.undeliverable);
}

fn get_descriptor(f: &mut FrameRef<'_>) -> Result<Descriptor, WireError> {
    let body = match f.u8("descriptor-body")? {
        0 => DescriptorBody::Update {
            id: get_proposal_id(f)?,
            hdo: Ordinal(f.uvarint("hdo")?),
            semantics: get_semantics(f)?,
            send_ts: SyncTime(f.ivarint("send-ts")?),
        },
        1 => DescriptorBody::Membership(get_view(f)?),
        tag => {
            return Err(WireError::BadTag {
                what: "descriptor-body",
                tag,
            })
        }
    };
    Ok(Descriptor {
        body,
        acks: AckBits(f.uvarint("acks")?),
        undeliverable: f.bool("undeliverable")?,
    })
}

fn put_oal(w: &mut WireCursor, oal: &Oal) {
    w.put_uvarint(oal.next_ordinal().0);
    w.put_uvarint(oal.len() as u64);
    for (_, d) in oal.iter() {
        put_descriptor(w, d);
    }
}

fn get_oal(f: &mut FrameRef<'_>) -> Result<Oal, WireError> {
    let next = Ordinal(f.uvarint("oal next")?);
    let len = f.seq_len("oal")?;
    if (len as u64) >= next.0.max(1) {
        // A window longer than the assigned range is nonsense.
        return Err(WireError::TooLong { what: "oal", len });
    }
    let mut entries = Vec::with_capacity(len.min(1024));
    for _ in 0..len {
        entries.push(get_descriptor(f)?);
    }
    let mut oal = Oal::new();
    oal.restore(next, entries);
    Ok(oal)
}

fn put_proposal(w: &mut WireCursor, p: &Proposal) {
    put_pid(w, p.sender);
    w.put_uvarint(p.incarnation.0 as u64);
    w.put_uvarint(p.seq);
    w.put_ivarint(p.send_ts.0);
    w.put_uvarint(p.hdo.0);
    put_semantics(w, &p.semantics);
    w.put_bytes(&p.payload);
}

fn get_proposal(f: &mut FrameRef<'_>) -> Result<Proposal, WireError> {
    Ok(Proposal {
        sender: get_pid(f)?,
        incarnation: Incarnation(f.narrow::<u32>("incarnation")?),
        seq: f.uvarint("seq")?,
        send_ts: SyncTime(f.ivarint("send-ts")?),
        hdo: Ordinal(f.uvarint("hdo")?),
        semantics: get_semantics(f)?,
        // The single point where payload bytes are copied out of the
        // borrowed frame into the owned message.
        payload: Bytes::copy_from_slice(f.bytes("payload")?),
    })
}

/// Encode `msg` (tag byte + v2 body) through the cursor. Framing is the
/// caller's concern ([`FrameBuilder::push_msg`] brackets this with a
/// length prefix).
pub fn encode_msg(msg: &Msg, w: &mut WireCursor) {
    match msg {
        Msg::Proposal(p) => {
            w.put_u8(0);
            put_proposal(w, p);
        }
        Msg::Decision(d) => {
            w.put_u8(1);
            put_pid(w, d.sender);
            w.put_ivarint(d.send_ts.0);
            put_view(w, &d.view);
            put_oal(w, &d.oal);
            w.put_uvarint(d.alive.0);
        }
        Msg::NoDecision(nd) => {
            w.put_u8(2);
            put_pid(w, nd.sender);
            w.put_ivarint(nd.send_ts.0);
            put_pid(w, nd.suspect);
            put_view_id(w, &nd.view_id);
            put_oal(w, &nd.oal_view);
            w.put_uvarint(nd.dpd.len() as u64);
            for d in &nd.dpd {
                put_update_desc(w, d);
            }
            w.put_uvarint(nd.alive.0);
        }
        Msg::Join(j) => {
            w.put_u8(3);
            put_pid(w, j.sender);
            w.put_uvarint(j.incarnation.0 as u64);
            w.put_ivarint(j.send_ts.0);
            w.put_uvarint(j.join_list.len() as u64);
            for (p, inc) in &j.join_list {
                put_pid(w, *p);
                w.put_uvarint(inc.0 as u64);
            }
            w.put_uvarint(j.alive.0);
        }
        Msg::Reconfig(r) => {
            w.put_u8(4);
            put_pid(w, r.sender);
            w.put_ivarint(r.send_ts.0);
            w.put_uvarint(r.reconfig_list.len() as u64);
            for p in &r.reconfig_list {
                put_pid(w, *p);
            }
            w.put_ivarint(r.last_decision_ts.0);
            put_view_id(w, &r.last_view);
            put_oal(w, &r.oal_view);
            w.put_uvarint(r.dpd.len() as u64);
            for d in &r.dpd {
                put_update_desc(w, d);
            }
            w.put_uvarint(r.alive.0);
        }
        Msg::ClockSync(cs) => {
            w.put_u8(5);
            match cs {
                ClockSyncMsg::Request {
                    sender,
                    rid,
                    hw_send,
                } => {
                    w.put_u8(0);
                    put_pid(w, *sender);
                    w.put_uvarint(*rid);
                    w.put_ivarint(hw_send.0);
                }
                ClockSyncMsg::Reply {
                    sender,
                    rid,
                    hw_send_echo,
                    sync_at_reply,
                    synced,
                } => {
                    w.put_u8(1);
                    put_pid(w, *sender);
                    w.put_uvarint(*rid);
                    w.put_ivarint(hw_send_echo.0);
                    w.put_ivarint(sync_at_reply.0);
                    w.put_bool(*synced);
                }
            }
        }
        Msg::StateTransfer(st) => {
            w.put_u8(6);
            put_pid(w, st.sender);
            put_pid(w, st.to);
            put_view_id(w, &st.view_id);
            w.put_bytes(&st.app_state);
            w.put_uvarint(st.proposals.len() as u64);
            for p in &st.proposals {
                put_proposal(w, p);
            }
            w.put_uvarint(st.fifo.len() as u64);
            for (p, next) in &st.fifo {
                put_pid(w, *p);
                w.put_uvarint(*next);
            }
            w.put_uvarint(st.ordinals.len() as u64);
            for (id, o) in &st.ordinals {
                put_proposal_id(w, id);
                w.put_uvarint(o.0);
            }
        }
        Msg::Nack(nk) => {
            w.put_u8(7);
            put_pid(w, nk.sender);
            w.put_ivarint(nk.send_ts.0);
            w.put_uvarint(nk.missing.len() as u64);
            for id in &nk.missing {
                put_proposal_id(w, id);
            }
        }
    }
}

/// Decode one message body (tag byte + v2 fields) from a frame cursor.
/// The caller checks [`FrameRef::is_exhausted`] afterwards if trailing
/// bytes must be rejected.
pub fn decode_msg(f: &mut FrameRef<'_>) -> Result<Msg, WireError> {
    match f.u8("msg")? {
        0 => Ok(Msg::Proposal(get_proposal(f)?)),
        1 => Ok(Msg::Decision(Decision {
            sender: get_pid(f)?,
            send_ts: SyncTime(f.ivarint("send-ts")?),
            view: get_view(f)?,
            oal: get_oal(f)?,
            alive: AckBits(f.uvarint("alive")?),
        })),
        2 => {
            let sender = get_pid(f)?;
            let send_ts = SyncTime(f.ivarint("send-ts")?);
            let suspect = get_pid(f)?;
            let view_id = get_view_id(f)?;
            let oal_view = get_oal(f)?;
            let len = f.seq_len("dpd")?;
            let mut dpd = Vec::with_capacity(len.min(1024));
            for _ in 0..len {
                dpd.push(get_update_desc(f)?);
            }
            Ok(Msg::NoDecision(NoDecision {
                sender,
                send_ts,
                suspect,
                view_id,
                oal_view,
                dpd,
                alive: AckBits(f.uvarint("alive")?),
            }))
        }
        3 => {
            let sender = get_pid(f)?;
            let incarnation = Incarnation(f.narrow::<u32>("incarnation")?);
            let send_ts = SyncTime(f.ivarint("send-ts")?);
            let len = f.seq_len("join-list")?;
            let mut join_list = Vec::with_capacity(len.min(1024));
            for _ in 0..len {
                let p = get_pid(f)?;
                let inc = Incarnation(f.narrow::<u32>("incarnation")?);
                join_list.push((p, inc));
            }
            Ok(Msg::Join(Join {
                sender,
                incarnation,
                send_ts,
                join_list,
                alive: AckBits(f.uvarint("alive")?),
            }))
        }
        4 => {
            let sender = get_pid(f)?;
            let send_ts = SyncTime(f.ivarint("send-ts")?);
            let len = f.seq_len("reconfig-list")?;
            let mut reconfig_list = Vec::with_capacity(len.min(1024));
            for _ in 0..len {
                reconfig_list.push(get_pid(f)?);
            }
            let last_decision_ts = SyncTime(f.ivarint("last-decision-ts")?);
            let last_view = get_view_id(f)?;
            let oal_view = get_oal(f)?;
            let dlen = f.seq_len("dpd")?;
            let mut dpd = Vec::with_capacity(dlen.min(1024));
            for _ in 0..dlen {
                dpd.push(get_update_desc(f)?);
            }
            Ok(Msg::Reconfig(Reconfig {
                sender,
                send_ts,
                reconfig_list,
                last_decision_ts,
                last_view,
                oal_view,
                dpd,
                alive: AckBits(f.uvarint("alive")?),
            }))
        }
        5 => match f.u8("clock-sync")? {
            0 => Ok(Msg::ClockSync(ClockSyncMsg::Request {
                sender: get_pid(f)?,
                rid: f.uvarint("rid")?,
                hw_send: HwTime(f.ivarint("hw-send")?),
            })),
            1 => Ok(Msg::ClockSync(ClockSyncMsg::Reply {
                sender: get_pid(f)?,
                rid: f.uvarint("rid")?,
                hw_send_echo: HwTime(f.ivarint("hw-send-echo")?),
                sync_at_reply: SyncTime(f.ivarint("sync-at-reply")?),
                synced: f.bool("synced")?,
            })),
            tag => Err(WireError::BadTag {
                what: "clock-sync",
                tag,
            }),
        },
        6 => {
            let sender = get_pid(f)?;
            let to = get_pid(f)?;
            let view_id = get_view_id(f)?;
            let app_state = Bytes::copy_from_slice(f.bytes("app-state")?);
            let plen = f.seq_len("proposals")?;
            let mut proposals = Vec::with_capacity(plen.min(1024));
            for _ in 0..plen {
                proposals.push(get_proposal(f)?);
            }
            let flen = f.seq_len("fifo")?;
            let mut fifo = Vec::with_capacity(flen.min(1024));
            for _ in 0..flen {
                let p = get_pid(f)?;
                let next = f.uvarint("fifo-next")?;
                fifo.push((p, next));
            }
            let olen = f.seq_len("ordinals")?;
            let mut ordinals = Vec::with_capacity(olen.min(1024));
            for _ in 0..olen {
                let id = get_proposal_id(f)?;
                let o = Ordinal(f.uvarint("ordinal")?);
                ordinals.push((id, o));
            }
            Ok(Msg::StateTransfer(StateTransfer {
                sender,
                to,
                view_id,
                app_state,
                proposals,
                fifo,
                ordinals,
            }))
        }
        7 => {
            let sender = get_pid(f)?;
            let send_ts = SyncTime(f.ivarint("send-ts")?);
            let len = f.seq_len("missing")?;
            let mut missing = Vec::with_capacity(len.min(1024));
            for _ in 0..len {
                missing.push(get_proposal_id(f)?);
            }
            Ok(Msg::Nack(Nack {
                sender,
                send_ts,
                missing,
            }))
        }
        tag => Err(WireError::BadTag { what: "msg", tag }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v2_roundtrip(msg: &Msg) -> Msg {
        let dgram = encode_single(msg);
        let mut msgs = decode_datagram(&dgram).expect("decode");
        assert_eq!(msgs.len(), 1);
        msgs.pop().unwrap()
    }

    fn sample_view() -> View {
        View::new(
            ViewId::new(3, ProcessId(1)),
            [ProcessId(0), ProcessId(1), ProcessId(4)],
        )
    }

    fn sample_proposal(seq: u64) -> Proposal {
        Proposal {
            sender: ProcessId(2),
            incarnation: Incarnation(1),
            seq,
            send_ts: SyncTime(40 + seq as i64),
            hdo: Ordinal(3),
            semantics: Semantics::TOTAL_STRONG,
            payload: Bytes::from(vec![seq as u8; 5]),
        }
    }

    #[test]
    fn uvarint_boundaries() {
        for (v, len) in [
            (0u64, 1usize),
            (127, 1),
            (128, 2),
            (300, 2),
            (16_384, 3),
            (u32::MAX as u64, 5),
            (u64::MAX, 10),
        ] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            assert_eq!(buf.len(), len, "length of {v}");
            let (back, n) = read_uvarint(&buf, "t").unwrap();
            assert_eq!((back, n), (v, len));
        }
    }

    #[test]
    fn uvarint_rejects_truncation_and_overflow() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            assert!(read_uvarint(&buf[..cut], "t").is_err(), "cut {cut}");
        }
        // Eleven continuation bytes: too long for u64.
        let long = [0x80u8; 11];
        assert!(matches!(
            read_uvarint(&long, "t"),
            Err(WireError::TooLong { .. })
        ));
        // Ten bytes whose last contributes more than one bit: overflow.
        let mut over = [0x80u8; 10];
        over[9] = 0x02;
        assert!(matches!(
            read_uvarint(&over, "t"),
            Err(WireError::TooLong { .. })
        ));
    }

    #[test]
    fn padded_length_prefix_is_valid_leb128() {
        let mut buf = Vec::new();
        let mut w = WireCursor::new(&mut buf);
        let t = w.begin_frame();
        w.put_u8(0xAB);
        w.end_frame(t);
        let (len, n) = read_uvarint(&buf, "t").unwrap();
        assert_eq!((len, n), (1, 4), "padded 4-byte prefix decodes");
        assert_eq!(buf[4], 0xAB);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -1_000_000, 1_000_000] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes stay small on the wire.
        let mut buf = Vec::new();
        put_uvarint(&mut buf, zigzag(-3));
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn every_msg_kind_roundtrips_v2() {
        let oal = Oal::new();
        let view = sample_view();
        let alive: AckBits = [ProcessId(0), ProcessId(1)].into_iter().collect();
        let msgs = vec![
            Msg::Proposal(sample_proposal(7)),
            Msg::Decision(Decision {
                sender: ProcessId(0),
                send_ts: SyncTime(20),
                view: view.clone(),
                oal: oal.clone(),
                alive,
            }),
            Msg::NoDecision(NoDecision {
                sender: ProcessId(1),
                send_ts: SyncTime(30),
                suspect: ProcessId(0),
                view_id: view.id,
                oal_view: oal.clone(),
                dpd: vec![sample_proposal(1).desc()],
                alive,
            }),
            Msg::Join(Join {
                sender: ProcessId(2),
                incarnation: Incarnation(1),
                send_ts: SyncTime(40),
                join_list: vec![(ProcessId(2), Incarnation(1))],
                alive,
            }),
            Msg::Reconfig(Reconfig {
                sender: ProcessId(2),
                send_ts: SyncTime(50),
                reconfig_list: vec![ProcessId(1), ProcessId(2)],
                last_decision_ts: SyncTime(20),
                last_view: view.id,
                oal_view: oal.clone(),
                dpd: vec![],
                alive,
            }),
            Msg::ClockSync(ClockSyncMsg::Request {
                sender: ProcessId(0),
                rid: 3,
                hw_send: HwTime(-11),
            }),
            Msg::ClockSync(ClockSyncMsg::Reply {
                sender: ProcessId(0),
                rid: 3,
                hw_send_echo: HwTime(11),
                sync_at_reply: SyncTime(13),
                synced: true,
            }),
            Msg::StateTransfer(StateTransfer {
                sender: ProcessId(0),
                to: ProcessId(2),
                view_id: view.id,
                app_state: Bytes::from_static(b"state"),
                proposals: vec![sample_proposal(2)],
                fifo: vec![(ProcessId(0), 3)],
                ordinals: vec![(ProposalId::new(ProcessId(1), 4), Ordinal(9))],
            }),
            Msg::Nack(Nack {
                sender: ProcessId(1),
                send_ts: SyncTime(60),
                missing: vec![ProposalId::new(ProcessId(0), 2)],
            }),
        ];
        for m in msgs {
            assert_eq!(v2_roundtrip(&m), m);
        }
    }

    #[test]
    fn oal_roundtrip_preserves_base_v2() {
        let g = View::new(ViewId::new(1, ProcessId(0)), [ProcessId(0), ProcessId(1)]);
        let mut oal = Oal::new();
        for i in 0..5u64 {
            let o = oal.append(Descriptor::update(
                ProposalId::new(ProcessId(0), i + 1),
                Ordinal::ZERO,
                Semantics::TOTAL_STRONG,
                SyncTime(i as i64),
                ProcessId(0),
            ));
            if i < 2 {
                oal.ack(o, ProcessId(1));
            }
        }
        oal.prune_stable(&g);
        let mut buf = Vec::new();
        let mut w = WireCursor::new(&mut buf);
        put_oal(&mut w, &oal);
        let mut f = FrameRef::new(&buf);
        let back = get_oal(&mut f).unwrap();
        assert!(f.is_exhausted());
        assert_eq!(back.base(), oal.base());
        assert_eq!(back.next_ordinal(), oal.next_ordinal());
    }

    #[test]
    fn multi_frame_datagram_roundtrips_in_order() {
        let mut b = FrameBuilder::new();
        for seq in 1..=5 {
            b.push_msg(&Msg::Proposal(sample_proposal(seq)));
        }
        assert_eq!(b.frames(), 5);
        let msgs = decode_datagram(b.bytes()).unwrap();
        assert_eq!(msgs.len(), 5);
        for (i, m) in msgs.iter().enumerate() {
            let Msg::Proposal(p) = m else {
                panic!("wrong kind")
            };
            assert_eq!(p.seq, i as u64 + 1);
        }
    }

    #[test]
    fn builder_reset_reuses_allocation() {
        let mut b = FrameBuilder::new();
        b.push_msg(&Msg::Proposal(sample_proposal(1)));
        let cap = {
            b.reset();
            assert!(b.is_empty());
            b.buf.capacity()
        };
        b.push_msg(&Msg::Proposal(sample_proposal(2)));
        assert!(b.buf.capacity() >= cap.min(b.buf.len()));
        assert_eq!(decode_datagram(b.bytes()).unwrap().len(), 1);
    }

    #[test]
    fn unknown_version_rejected() {
        // v1 encodings start with a tag byte 0..=7 — all rejected.
        for first in [0u8, 1, 7, 0xD0 | 1, 0xD0 | 3, 0xFF] {
            let dgram = [first, 0x00];
            assert!(
                matches!(
                    open_datagram(&dgram),
                    Err(WireError::BadVersion { found }) if found == first
                ),
                "byte {first:#x}"
            );
        }
        assert!(matches!(
            open_datagram(&[]),
            Err(WireError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn empty_datagram_is_an_error() {
        assert!(decode_datagram(&[VERSION_BYTE]).is_err());
    }

    #[test]
    fn truncated_length_prefix_is_an_error_not_a_panic() {
        let mut b = FrameBuilder::new();
        b.push_msg(&Msg::Proposal(sample_proposal(1)));
        let bytes = b.bytes();
        // Cut inside the padded length prefix (bytes 1..=4).
        for cut in 2..5.min(bytes.len()) {
            assert!(decode_datagram(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Cut anywhere: error, never panic, never an extra message.
        for cut in 0..bytes.len() {
            let _ = decode_datagram(&bytes[..cut]);
        }
    }

    #[test]
    fn frame_length_overrun_is_an_error() {
        // A frame claiming more body than the datagram holds.
        let mut dgram = vec![VERSION_BYTE];
        put_uvarint(&mut dgram, 100);
        dgram.push(0x00); // only 1 body byte present
        assert!(matches!(
            decode_datagram(&dgram),
            Err(WireError::UnexpectedEof { .. })
        ));
        // A frame claiming an absurd length fails the sanity cap.
        let mut dgram = vec![VERSION_BYTE];
        put_uvarint(&mut dgram, (MAX_FRAME_LEN as u64) + 1);
        assert!(matches!(
            decode_datagram(&dgram),
            Err(WireError::TooLong { .. })
        ));
    }

    #[test]
    fn trailing_bytes_in_frame_rejected() {
        let mut buf = vec![VERSION_BYTE];
        let mut w = WireCursor::new(&mut buf);
        let t = w.begin_frame();
        encode_msg(
            &Msg::ClockSync(ClockSyncMsg::Request {
                sender: ProcessId(0),
                rid: 1,
                hw_send: HwTime(2),
            }),
            &mut w,
        );
        w.put_u8(0xEE); // junk inside the frame, after the message
        w.end_frame(t);
        assert!(matches!(
            decode_datagram(&buf),
            Err(WireError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn v2_is_denser_than_v1_for_control_traffic() {
        use crate::codec::Encode;
        let mut oal = Oal::new();
        for i in 0..8u64 {
            oal.append(Descriptor::update(
                ProposalId::new(ProcessId(0), i + 1),
                Ordinal(i),
                Semantics::TOTAL_STRONG,
                SyncTime(1_000 + i as i64),
                ProcessId(0),
            ));
        }
        let d = Msg::Decision(Decision {
            sender: ProcessId(0),
            send_ts: SyncTime(2_000),
            view: sample_view(),
            oal,
            alive: AckBits(0b111),
        });
        let v1 = d.to_bytes().len();
        let v2 = encode_single(&d).len();
        assert!(
            v2 < v1,
            "v2 ({v2} bytes) should be denser than v1 ({v1} bytes)"
        );
    }

    #[test]
    fn frame_ref_take_borrows_from_input() {
        let data = [5u8, 1, 2, 3, 4, 5];
        let mut f = FrameRef::new(&data);
        let payload = f.bytes("p").unwrap();
        // Same allocation: the subslice points into `data`.
        assert_eq!(payload.as_ptr(), data[1..].as_ptr());
        assert!(f.is_exhausted());
    }
}
