//! Delivery semantics of the timewheel group communication service.
//!
//! The service provides three ordering semantics and three atomicity
//! semantics simultaneously (paper §1); every proposal carries its own
//! [`Semantics`] pair and the broadcast layer enforces them per-update.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How a delivered update is ordered relative to other updates.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Ordering {
    /// No ordering constraint — delivered as soon as its atomicity
    /// condition holds (still FIFO per sender).
    #[default]
    Unordered,
    /// Total order: every member delivers total-ordered updates in the
    /// same (ordinal) order.
    Total,
    /// Time order: delivered in the order of their synchronized send
    /// timestamps, after a fixed delivery latency has elapsed on the
    /// synchronized clock.
    Time,
}

impl Ordering {
    /// All ordering semantics, for sweeps and property tests.
    pub const ALL: [Ordering; 3] = [Ordering::Unordered, Ordering::Total, Ordering::Time];

    /// Whether this ordering constrains the relative delivery order of
    /// different senders' updates.
    #[inline]
    pub fn is_ordered(self) -> bool {
        !matches!(self, Ordering::Unordered)
    }
}

impl fmt::Display for Ordering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Ordering::Unordered => "unordered",
            Ordering::Total => "total",
            Ordering::Time => "time",
        })
    }
}

/// How strongly the delivery of an update is tied to what other members
/// have received.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Atomicity {
    /// Weak atomicity: a member may deliver the update as soon as it has
    /// received it and learned its ordinal.
    #[default]
    Weak,
    /// Strong atomicity: deliverable only once a majority of the current
    /// group has acknowledged every proposal the update can depend on
    /// (every proposal with an ordinal ≤ the update's `hdo`).
    Strong,
    /// Strict atomicity: deliverable only once *all* members of the
    /// current group have acknowledged every proposal the update can
    /// depend on, i.e. those proposals are stable.
    Strict,
}

impl Atomicity {
    /// All atomicity semantics, for sweeps and property tests.
    pub const ALL: [Atomicity; 3] = [Atomicity::Weak, Atomicity::Strong, Atomicity::Strict];

    /// Whether delivery depends on acknowledgements from other members.
    #[inline]
    pub fn needs_acks(self) -> bool {
        !matches!(self, Atomicity::Weak)
    }
}

impl fmt::Display for Atomicity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Atomicity::Weak => "weak",
            Atomicity::Strong => "strong",
            Atomicity::Strict => "strict",
        })
    }
}

/// The (ordering, atomicity) pair a proposal is broadcast with.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Semantics {
    /// Ordering constraint.
    pub ordering: Ordering,
    /// Atomicity constraint.
    pub atomicity: Atomicity,
}

impl Semantics {
    /// Construct a semantics pair.
    #[inline]
    pub const fn new(ordering: Ordering, atomicity: Atomicity) -> Self {
        Semantics {
            ordering,
            atomicity,
        }
    }

    /// The cheapest semantics: unordered + weak.
    pub const UNORDERED_WEAK: Semantics = Semantics::new(Ordering::Unordered, Atomicity::Weak);
    /// Classic totally-ordered atomic broadcast: total + strong.
    pub const TOTAL_STRONG: Semantics = Semantics::new(Ordering::Total, Atomicity::Strong);
    /// The most conservative semantics: time + strict.
    pub const TIME_STRICT: Semantics = Semantics::new(Ordering::Time, Atomicity::Strict);

    /// Iterate over the full 3×3 semantics matrix.
    pub fn matrix() -> impl Iterator<Item = Semantics> {
        Ordering::ALL.into_iter().flat_map(|o| {
            Atomicity::ALL
                .into_iter()
                .map(move |a| Semantics::new(o, a))
        })
    }
}

impl fmt::Display for Semantics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.ordering, self.atomicity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_nine_distinct_entries() {
        let all: Vec<_> = Semantics::matrix().collect();
        assert_eq!(all.len(), 9);
        let uniq: std::collections::BTreeSet<_> = all.iter().copied().collect();
        assert_eq!(uniq.len(), 9);
    }

    #[test]
    fn ack_requirements() {
        assert!(!Atomicity::Weak.needs_acks());
        assert!(Atomicity::Strong.needs_acks());
        assert!(Atomicity::Strict.needs_acks());
    }

    #[test]
    fn ordering_flags() {
        assert!(!Ordering::Unordered.is_ordered());
        assert!(Ordering::Total.is_ordered());
        assert!(Ordering::Time.is_ordered());
    }

    #[test]
    fn display() {
        assert_eq!(Semantics::TOTAL_STRONG.to_string(), "total/strong");
        assert_eq!(Semantics::UNORDERED_WEAK.to_string(), "unordered/weak");
        assert_eq!(Semantics::TIME_STRICT.to_string(), "time/strict");
    }
}
