//! Compact binary wire codec.
//!
//! A hand-rolled, schema-stable format over [`bytes`]: fixed-width
//! little-endian integers, `u32`-length-prefixed sequences, one-byte
//! variant tags. This is what the UDP runtime puts in datagrams and what
//! the codec benchmarks measure; the simulator passes typed messages
//! directly (it can also be configured to round-trip through this codec to
//! include serialization cost).
//!
//! Decoding is total: any byte string either decodes or returns a
//! [`WireError`]; malformed input never panics (fuzzed by proptest).

use crate::ids::{Incarnation, Ordinal, ProcessId, ProposalId};
use crate::messages::{
    ClockSyncMsg, Decision, Join, Msg, Nack, NoDecision, Proposal, Reconfig, StateTransfer,
    UpdateDesc,
};
use crate::oal::{AckBits, Descriptor, DescriptorBody, Oal};
use crate::semantics::{Atomicity, Ordering, Semantics};
use crate::time::{Duration, HwTime, SyncTime};
use crate::view::{View, ViewId};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was complete.
    UnexpectedEof {
        /// What was being decoded.
        what: &'static str,
    },
    /// An unknown variant tag.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A length prefix exceeding the sanity limit.
    TooLong {
        /// What was being decoded.
        what: &'static str,
        /// The claimed length.
        len: usize,
    },
    /// Trailing bytes after a complete message.
    TrailingBytes {
        /// How many bytes remained.
        remaining: usize,
    },
    /// A framed datagram whose leading version byte is not a version
    /// this build understands (see [`crate::frame::WIRE_VERSION`]).
    BadVersion {
        /// The offending first byte.
        found: u8,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { what } => write!(f, "unexpected eof decoding {what}"),
            WireError::BadTag { what, tag } => write!(f, "bad tag {tag} decoding {what}"),
            WireError::TooLong { what, len } => write!(f, "length {len} too long decoding {what}"),
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after message")
            }
            WireError::BadVersion { found } => {
                write!(f, "unknown wire version byte {found:#04x}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Sanity cap on any decoded sequence length (items, not bytes).
const MAX_SEQ: usize = 1 << 20;

/// Serialize into a byte buffer.
pub trait Encode {
    /// Append this value's encoding to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Encode into a fresh buffer.
    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        self.encode(&mut buf);
        buf.freeze()
    }
}

/// Deserialize from a byte buffer.
pub trait Decode: Sized {
    /// Consume this value's encoding from the front of `buf`.
    fn decode(buf: &mut Bytes) -> Result<Self, WireError>;

    /// Decode a complete value from `bytes`, rejecting trailing garbage.
    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut b = Bytes::copy_from_slice(bytes);
        let v = Self::decode(&mut b)?;
        if !b.is_empty() {
            return Err(WireError::TrailingBytes {
                remaining: b.remaining(),
            });
        }
        Ok(v)
    }
}

fn need(buf: &Bytes, n: usize, what: &'static str) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::UnexpectedEof { what })
    } else {
        Ok(())
    }
}

macro_rules! impl_prim {
    ($ty:ty, $put:ident, $get:ident, $n:expr) => {
        impl Encode for $ty {
            #[inline]
            fn encode(&self, buf: &mut BytesMut) {
                buf.$put(*self);
            }
        }
        impl Decode for $ty {
            #[inline]
            fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
                need(buf, $n, stringify!($ty))?;
                Ok(buf.$get())
            }
        }
    };
}

impl_prim!(u8, put_u8, get_u8, 1);
impl_prim!(u16, put_u16_le, get_u16_le, 2);
impl_prim!(u32, put_u32_le, get_u32_le, 4);
impl_prim!(u64, put_u64_le, get_u64_le, 8);
impl_prim!(i64, put_i64_le, get_i64_le, 8);

impl Encode for bool {
    #[inline]
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self as u8);
    }
}
impl Decode for bool {
    #[inline]
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { what: "bool", tag }),
        }
    }
}

impl Encode for Bytes {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u32).encode(buf);
        buf.put_slice(self);
    }
}
impl Decode for Bytes {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let len = u32::decode(buf)? as usize;
        if len > MAX_SEQ {
            return Err(WireError::TooLong { what: "bytes", len });
        }
        need(buf, len, "bytes body")?;
        Ok(buf.split_to(len))
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u32).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
}
impl<T: Decode> Decode for Vec<T> {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let len = u32::decode(buf)? as usize;
        if len > MAX_SEQ {
            return Err(WireError::TooLong { what: "vec", len });
        }
        let mut v = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            v.push(T::decode(buf)?);
        }
        Ok(v)
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}
impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

macro_rules! impl_newtype {
    ($ty:ident, $inner:ty) => {
        impl Encode for $ty {
            #[inline]
            fn encode(&self, buf: &mut BytesMut) {
                self.0.encode(buf);
            }
        }
        impl Decode for $ty {
            #[inline]
            fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
                Ok($ty(<$inner>::decode(buf)?))
            }
        }
    };
}

impl_newtype!(ProcessId, u16);
impl_newtype!(Incarnation, u32);
impl_newtype!(Ordinal, u64);
impl_newtype!(HwTime, i64);
impl_newtype!(SyncTime, i64);
impl_newtype!(Duration, i64);
impl_newtype!(AckBits, u64);

impl Encode for ProposalId {
    fn encode(&self, buf: &mut BytesMut) {
        self.proposer.encode(buf);
        self.seq.encode(buf);
    }
}
impl Decode for ProposalId {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(ProposalId {
            proposer: ProcessId::decode(buf)?,
            seq: u64::decode(buf)?,
        })
    }
}

impl Encode for Ordering {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(match self {
            Ordering::Unordered => 0,
            Ordering::Total => 1,
            Ordering::Time => 2,
        });
    }
}
impl Decode for Ordering {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(Ordering::Unordered),
            1 => Ok(Ordering::Total),
            2 => Ok(Ordering::Time),
            tag => Err(WireError::BadTag {
                what: "ordering",
                tag,
            }),
        }
    }
}

impl Encode for Atomicity {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(match self {
            Atomicity::Weak => 0,
            Atomicity::Strong => 1,
            Atomicity::Strict => 2,
        });
    }
}
impl Decode for Atomicity {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(Atomicity::Weak),
            1 => Ok(Atomicity::Strong),
            2 => Ok(Atomicity::Strict),
            tag => Err(WireError::BadTag {
                what: "atomicity",
                tag,
            }),
        }
    }
}

impl Encode for Semantics {
    fn encode(&self, buf: &mut BytesMut) {
        self.ordering.encode(buf);
        self.atomicity.encode(buf);
    }
}
impl Decode for Semantics {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(Semantics {
            ordering: Ordering::decode(buf)?,
            atomicity: Atomicity::decode(buf)?,
        })
    }
}

impl Encode for ViewId {
    fn encode(&self, buf: &mut BytesMut) {
        self.seq.encode(buf);
        self.creator.encode(buf);
    }
}
impl Decode for ViewId {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(ViewId {
            seq: u64::decode(buf)?,
            creator: ProcessId::decode(buf)?,
        })
    }
}

impl Encode for View {
    fn encode(&self, buf: &mut BytesMut) {
        self.id.encode(buf);
        self.member_vec().encode(buf);
    }
}
impl Decode for View {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let id = ViewId::decode(buf)?;
        let members: Vec<ProcessId> = Vec::decode(buf)?;
        Ok(View::new(id, members))
    }
}

impl Encode for UpdateDesc {
    fn encode(&self, buf: &mut BytesMut) {
        self.id.encode(buf);
        self.hdo.encode(buf);
        self.semantics.encode(buf);
        self.send_ts.encode(buf);
    }
}
impl Decode for UpdateDesc {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(UpdateDesc {
            id: ProposalId::decode(buf)?,
            hdo: Ordinal::decode(buf)?,
            semantics: Semantics::decode(buf)?,
            send_ts: SyncTime::decode(buf)?,
        })
    }
}

impl Encode for DescriptorBody {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            DescriptorBody::Update {
                id,
                hdo,
                semantics,
                send_ts,
            } => {
                buf.put_u8(0);
                id.encode(buf);
                hdo.encode(buf);
                semantics.encode(buf);
                send_ts.encode(buf);
            }
            DescriptorBody::Membership(view) => {
                buf.put_u8(1);
                view.encode(buf);
            }
        }
    }
}
impl Decode for DescriptorBody {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(DescriptorBody::Update {
                id: ProposalId::decode(buf)?,
                hdo: Ordinal::decode(buf)?,
                semantics: Semantics::decode(buf)?,
                send_ts: SyncTime::decode(buf)?,
            }),
            1 => Ok(DescriptorBody::Membership(View::decode(buf)?)),
            tag => Err(WireError::BadTag {
                what: "descriptor-body",
                tag,
            }),
        }
    }
}

impl Encode for Descriptor {
    fn encode(&self, buf: &mut BytesMut) {
        self.body.encode(buf);
        self.acks.encode(buf);
        self.undeliverable.encode(buf);
    }
}
impl Decode for Descriptor {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(Descriptor {
            body: DescriptorBody::decode(buf)?,
            acks: AckBits::decode(buf)?,
            undeliverable: bool::decode(buf)?,
        })
    }
}

impl Encode for Oal {
    fn encode(&self, buf: &mut BytesMut) {
        self.next_ordinal().encode(buf);
        (self.len() as u32).encode(buf);
        for (_, d) in self.iter() {
            d.encode(buf);
        }
    }
}
impl Decode for Oal {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let next = Ordinal::decode(buf)?;
        let len = u32::decode(buf)? as usize;
        if len > MAX_SEQ {
            return Err(WireError::TooLong { what: "oal", len });
        }
        if (len as u64) >= next.0.max(1) {
            // A window longer than the assigned range is nonsense.
            return Err(WireError::TooLong { what: "oal", len });
        }
        let mut oal = Oal::new();
        // Reconstruct by appending then restoring the base via skip:
        // encode/decode preserve (next, entries) exactly because ordinals
        // are implicit.
        let mut entries = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            entries.push(Descriptor::decode(buf)?);
        }
        oal.restore(next, entries);
        Ok(oal)
    }
}

impl Encode for Proposal {
    fn encode(&self, buf: &mut BytesMut) {
        self.sender.encode(buf);
        self.incarnation.encode(buf);
        self.seq.encode(buf);
        self.send_ts.encode(buf);
        self.hdo.encode(buf);
        self.semantics.encode(buf);
        self.payload.encode(buf);
    }
}
impl Decode for Proposal {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(Proposal {
            sender: ProcessId::decode(buf)?,
            incarnation: Incarnation::decode(buf)?,
            seq: u64::decode(buf)?,
            send_ts: SyncTime::decode(buf)?,
            hdo: Ordinal::decode(buf)?,
            semantics: Semantics::decode(buf)?,
            payload: Bytes::decode(buf)?,
        })
    }
}

impl Encode for Decision {
    fn encode(&self, buf: &mut BytesMut) {
        self.sender.encode(buf);
        self.send_ts.encode(buf);
        self.view.encode(buf);
        self.oal.encode(buf);
        self.alive.encode(buf);
    }
}
impl Decode for Decision {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(Decision {
            sender: ProcessId::decode(buf)?,
            send_ts: SyncTime::decode(buf)?,
            view: View::decode(buf)?,
            oal: Oal::decode(buf)?,
            alive: AckBits::decode(buf)?,
        })
    }
}

impl Encode for NoDecision {
    fn encode(&self, buf: &mut BytesMut) {
        self.sender.encode(buf);
        self.send_ts.encode(buf);
        self.suspect.encode(buf);
        self.view_id.encode(buf);
        self.oal_view.encode(buf);
        self.dpd.encode(buf);
        self.alive.encode(buf);
    }
}
impl Decode for NoDecision {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(NoDecision {
            sender: ProcessId::decode(buf)?,
            send_ts: SyncTime::decode(buf)?,
            suspect: ProcessId::decode(buf)?,
            view_id: ViewId::decode(buf)?,
            oal_view: Oal::decode(buf)?,
            dpd: Vec::decode(buf)?,
            alive: AckBits::decode(buf)?,
        })
    }
}

impl Encode for Join {
    fn encode(&self, buf: &mut BytesMut) {
        self.sender.encode(buf);
        self.incarnation.encode(buf);
        self.send_ts.encode(buf);
        self.join_list.encode(buf);
        self.alive.encode(buf);
    }
}
impl Decode for Join {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(Join {
            sender: ProcessId::decode(buf)?,
            incarnation: Incarnation::decode(buf)?,
            send_ts: SyncTime::decode(buf)?,
            join_list: Vec::decode(buf)?,
            alive: AckBits::decode(buf)?,
        })
    }
}

impl Encode for Reconfig {
    fn encode(&self, buf: &mut BytesMut) {
        self.sender.encode(buf);
        self.send_ts.encode(buf);
        self.reconfig_list.encode(buf);
        self.last_decision_ts.encode(buf);
        self.last_view.encode(buf);
        self.oal_view.encode(buf);
        self.dpd.encode(buf);
        self.alive.encode(buf);
    }
}
impl Decode for Reconfig {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(Reconfig {
            sender: ProcessId::decode(buf)?,
            send_ts: SyncTime::decode(buf)?,
            reconfig_list: Vec::decode(buf)?,
            last_decision_ts: SyncTime::decode(buf)?,
            last_view: ViewId::decode(buf)?,
            oal_view: Oal::decode(buf)?,
            dpd: Vec::decode(buf)?,
            alive: AckBits::decode(buf)?,
        })
    }
}

impl Encode for ClockSyncMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ClockSyncMsg::Request {
                sender,
                rid,
                hw_send,
            } => {
                buf.put_u8(0);
                sender.encode(buf);
                rid.encode(buf);
                hw_send.encode(buf);
            }
            ClockSyncMsg::Reply {
                sender,
                rid,
                hw_send_echo,
                sync_at_reply,
                synced,
            } => {
                buf.put_u8(1);
                sender.encode(buf);
                rid.encode(buf);
                hw_send_echo.encode(buf);
                sync_at_reply.encode(buf);
                synced.encode(buf);
            }
        }
    }
}
impl Decode for ClockSyncMsg {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(ClockSyncMsg::Request {
                sender: ProcessId::decode(buf)?,
                rid: u64::decode(buf)?,
                hw_send: HwTime::decode(buf)?,
            }),
            1 => Ok(ClockSyncMsg::Reply {
                sender: ProcessId::decode(buf)?,
                rid: u64::decode(buf)?,
                hw_send_echo: HwTime::decode(buf)?,
                sync_at_reply: SyncTime::decode(buf)?,
                synced: bool::decode(buf)?,
            }),
            tag => Err(WireError::BadTag {
                what: "clock-sync",
                tag,
            }),
        }
    }
}

impl Encode for StateTransfer {
    fn encode(&self, buf: &mut BytesMut) {
        self.sender.encode(buf);
        self.to.encode(buf);
        self.view_id.encode(buf);
        self.app_state.encode(buf);
        self.proposals.encode(buf);
        self.fifo.encode(buf);
        self.ordinals.encode(buf);
    }
}
impl Decode for StateTransfer {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(StateTransfer {
            sender: ProcessId::decode(buf)?,
            to: ProcessId::decode(buf)?,
            view_id: ViewId::decode(buf)?,
            app_state: Bytes::decode(buf)?,
            proposals: Vec::decode(buf)?,
            fifo: Vec::decode(buf)?,
            ordinals: Vec::decode(buf)?,
        })
    }
}

impl Encode for Nack {
    fn encode(&self, buf: &mut BytesMut) {
        self.sender.encode(buf);
        self.send_ts.encode(buf);
        self.missing.encode(buf);
    }
}
impl Decode for Nack {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(Nack {
            sender: ProcessId::decode(buf)?,
            send_ts: SyncTime::decode(buf)?,
            missing: Vec::decode(buf)?,
        })
    }
}

impl Encode for Msg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Msg::Proposal(m) => {
                buf.put_u8(0);
                m.encode(buf);
            }
            Msg::Decision(m) => {
                buf.put_u8(1);
                m.encode(buf);
            }
            Msg::NoDecision(m) => {
                buf.put_u8(2);
                m.encode(buf);
            }
            Msg::Join(m) => {
                buf.put_u8(3);
                m.encode(buf);
            }
            Msg::Reconfig(m) => {
                buf.put_u8(4);
                m.encode(buf);
            }
            Msg::ClockSync(m) => {
                buf.put_u8(5);
                m.encode(buf);
            }
            Msg::StateTransfer(m) => {
                buf.put_u8(6);
                m.encode(buf);
            }
            Msg::Nack(m) => {
                buf.put_u8(7);
                m.encode(buf);
            }
        }
    }
}
impl Decode for Msg {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(Msg::Proposal(Proposal::decode(buf)?)),
            1 => Ok(Msg::Decision(Decision::decode(buf)?)),
            2 => Ok(Msg::NoDecision(NoDecision::decode(buf)?)),
            3 => Ok(Msg::Join(Join::decode(buf)?)),
            4 => Ok(Msg::Reconfig(Reconfig::decode(buf)?)),
            5 => Ok(Msg::ClockSync(ClockSyncMsg::decode(buf)?)),
            6 => Ok(Msg::StateTransfer(StateTransfer::decode(buf)?)),
            7 => Ok(Msg::Nack(Nack::decode(buf)?)),
            tag => Err(WireError::BadTag { what: "msg", tag }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.to_bytes();
        let back = T::from_bytes(&bytes).expect("decode");
        assert_eq!(&back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&0u8);
        roundtrip(&0xBEEFu16);
        roundtrip(&0xDEAD_BEEFu32);
        roundtrip(&u64::MAX);
        roundtrip(&i64::MIN);
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&Bytes::from_static(b"payload"));
        roundtrip(&vec![1u64, 2, 3]);
    }

    #[test]
    fn ids_roundtrip() {
        roundtrip(&ProcessId(7));
        roundtrip(&Incarnation(3));
        roundtrip(&Ordinal(99));
        roundtrip(&ProposalId::new(ProcessId(1), 42));
        roundtrip(&SyncTime::from_millis(5));
        roundtrip(&HwTime::from_millis(-5));
        roundtrip(&Duration::from_secs(1));
    }

    #[test]
    fn semantics_roundtrip_matrix() {
        for s in Semantics::matrix() {
            roundtrip(&s);
        }
    }

    #[test]
    fn view_roundtrip() {
        let v = View::new(
            ViewId::new(3, ProcessId(1)),
            [ProcessId(0), ProcessId(1), ProcessId(4)],
        );
        roundtrip(&v);
    }

    #[test]
    fn oal_roundtrip_preserves_base() {
        let g = View::new(ViewId::new(1, ProcessId(0)), [ProcessId(0), ProcessId(1)]);
        let mut oal = Oal::new();
        for i in 0..5u64 {
            let o = oal.append(Descriptor::update(
                ProposalId::new(ProcessId(0), i + 1),
                Ordinal::ZERO,
                Semantics::TOTAL_STRONG,
                SyncTime(i as i64),
                ProcessId(0),
            ));
            if i < 2 {
                oal.ack(o, ProcessId(1));
            }
        }
        oal.prune_stable(&g);
        assert_eq!(oal.base(), Ordinal(3));
        roundtrip(&oal);
        let back = Oal::from_bytes(&oal.to_bytes()).unwrap();
        assert_eq!(back.base(), Ordinal(3));
        assert_eq!(back.next_ordinal(), Ordinal(6));
    }

    #[test]
    fn message_roundtrips() {
        let oal = Oal::new();
        let view = View::new(ViewId::new(1, ProcessId(0)), [ProcessId(0), ProcessId(1)]);
        let alive: AckBits = [ProcessId(0), ProcessId(1)].into_iter().collect();

        roundtrip(&Msg::Proposal(Proposal {
            sender: ProcessId(1),
            incarnation: Incarnation(0),
            seq: 1,
            send_ts: SyncTime(10),
            hdo: Ordinal(0),
            semantics: Semantics::TIME_STRICT,
            payload: Bytes::from_static(b"x"),
        }));
        roundtrip(&Msg::Decision(Decision {
            sender: ProcessId(0),
            send_ts: SyncTime(20),
            view: view.clone(),
            oal: oal.clone(),
            alive,
        }));
        roundtrip(&Msg::NoDecision(NoDecision {
            sender: ProcessId(1),
            send_ts: SyncTime(30),
            suspect: ProcessId(0),
            view_id: view.id,
            oal_view: oal.clone(),
            dpd: vec![UpdateDesc {
                id: ProposalId::new(ProcessId(1), 1),
                hdo: Ordinal(0),
                semantics: Semantics::UNORDERED_WEAK,
                send_ts: SyncTime(5),
            }],
            alive,
        }));
        roundtrip(&Msg::Join(Join {
            sender: ProcessId(2),
            incarnation: Incarnation(1),
            send_ts: SyncTime(40),
            join_list: vec![(ProcessId(2), Incarnation(1))],
            alive,
        }));
        roundtrip(&Msg::Reconfig(Reconfig {
            sender: ProcessId(2),
            send_ts: SyncTime(50),
            reconfig_list: vec![ProcessId(1), ProcessId(2)],
            last_decision_ts: SyncTime(20),
            last_view: view.id,
            oal_view: oal,
            dpd: vec![],
            alive,
        }));
        roundtrip(&Msg::ClockSync(ClockSyncMsg::Reply {
            sender: ProcessId(0),
            rid: 3,
            hw_send_echo: HwTime(11),
            sync_at_reply: SyncTime(13),
            synced: true,
        }));
        roundtrip(&Msg::StateTransfer(StateTransfer {
            sender: ProcessId(0),
            to: ProcessId(2),
            view_id: view.id,
            app_state: Bytes::from_static(b"state"),
            proposals: vec![],
            fifo: vec![(ProcessId(0), 3)],
            ordinals: vec![(ProposalId::new(ProcessId(1), 4), Ordinal(9))],
        }));
    }

    #[test]
    fn decode_rejects_bad_tags() {
        assert!(matches!(
            Msg::from_bytes(&[99]),
            Err(WireError::BadTag { what: "msg", .. })
        ));
        assert!(matches!(
            bool::from_bytes(&[7]),
            Err(WireError::BadTag { what: "bool", .. })
        ));
    }

    #[test]
    fn decode_rejects_truncation() {
        let m = Msg::ClockSync(ClockSyncMsg::Request {
            sender: ProcessId(0),
            rid: 1,
            hw_send: HwTime(2),
        });
        let bytes = m.to_bytes();
        for cut in 0..bytes.len() {
            assert!(Msg::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut bytes = Msg::ClockSync(ClockSyncMsg::Request {
            sender: ProcessId(0),
            rid: 1,
            hw_send: HwTime(2),
        })
        .to_bytes()
        .to_vec();
        bytes.push(0);
        assert!(matches!(
            Msg::from_bytes(&bytes),
            Err(WireError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn decode_rejects_absurd_lengths() {
        // A Vec claiming 2^30 elements.
        let mut buf = BytesMut::new();
        (1u32 << 30).encode(&mut buf);
        let r: Result<Vec<u64>, _> = Vec::from_bytes(&buf.freeze());
        assert!(matches!(r, Err(WireError::TooLong { .. })));
    }

    #[test]
    fn wire_error_display() {
        let e = WireError::UnexpectedEof { what: "u64" };
        assert!(e.to_string().contains("u64"));
        let e = WireError::BadTag {
            what: "msg",
            tag: 9,
        };
        assert!(e.to_string().contains('9'));
    }
}
