//! The messages of the timewheel group communication service.
//!
//! Four *control* messages drive membership (paper §4): the broadcast
//! protocol's [`Decision`] (doubling as the failure detector's heartbeat),
//! plus [`NoDecision`], [`Join`] and [`Reconfig`]. [`Proposal`] carries
//! client updates; [`ClockSyncMsg`] and [`StateTransfer`] belong to the
//! substrate layers.
//!
//! Every control message piggybacks the sender's *alive-list* — the paper
//! relies on this for join integration ("group members piggyback their
//! alive-lists on all control messages they send").

use crate::ids::{Incarnation, Ordinal, ProcessId, ProposalId};
use crate::oal::{AckBits, Oal};
use crate::semantics::Semantics;
use crate::time::{HwTime, SyncTime};
use crate::view::{View, ViewId};
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An alive-list, piggybacked on every control message: the set of team
/// members the sender's failure detector currently believes to be alive.
pub type AliveList = AckBits;

/// Descriptor of a proposal as carried in `dpd` fields: enough to let a
/// new decider append the proposal to the oal (paper §4.3, "delivered
/// proposal descriptors").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UpdateDesc {
    /// Which proposal.
    pub id: ProposalId,
    /// Its highest-dependency ordinal.
    pub hdo: Ordinal,
    /// Its delivery semantics.
    pub semantics: Semantics,
    /// Its synchronized send timestamp.
    pub send_ts: SyncTime,
}

/// A client update broadcast by a team member (timewheel atomic broadcast).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Proposal {
    /// The proposing member.
    pub sender: ProcessId,
    /// Sender incarnation (stale-life rejection).
    pub incarnation: Incarnation,
    /// Per-sender sequence number (1-based).
    pub seq: u64,
    /// Synchronized send timestamp.
    pub send_ts: SyncTime,
    /// Highest dependency ordinal: the highest ordinal the sender knew
    /// when proposing. The update may depend on anything ≤ `hdo`.
    pub hdo: Ordinal,
    /// Requested delivery semantics.
    pub semantics: Semantics,
    /// Opaque application payload.
    pub payload: Bytes,
}

impl Proposal {
    /// This proposal's identity.
    #[inline]
    pub fn id(&self) -> ProposalId {
        ProposalId::new(self.sender, self.seq)
    }

    /// Its `dpd`-style descriptor.
    pub fn desc(&self) -> UpdateDesc {
        UpdateDesc {
            id: self.id(),
            hdo: self.hdo,
            semantics: self.semantics,
            send_ts: self.send_ts,
        }
    }
}

/// The decider's periodic message (timewheel atomic broadcast): assigns
/// ordinals via the carried oal, establishes stability, detects losses —
/// and, for the membership protocol, is the heartbeat that keeps the
/// failure detector quiet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decision {
    /// The decider sending this message.
    pub sender: ProcessId,
    /// Synchronized send timestamp; also the message's identity in the
    /// expected-sender protocol.
    pub send_ts: SyncTime,
    /// The group this decision is issued in.
    pub view: View,
    /// The ordering and acknowledgement list.
    pub oal: Oal,
    /// Piggybacked alive-list.
    pub alive: AliveList,
}

/// Single-failure election message: the sender suspects `suspect` and asks
/// that it be removed from the membership. Travels around the ring (each
/// member sends its own after hearing its predecessor's).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoDecision {
    /// The suspecting member.
    pub sender: ProcessId,
    /// Synchronized send timestamp.
    pub send_ts: SyncTime,
    /// The member suspected to have failed.
    pub suspect: ProcessId,
    /// The group in which the suspicion arose.
    pub view_id: ViewId,
    /// The sender's current view of the oal (paper §4.3: used by the new
    /// decider to merge acknowledgements and detect lost proposals).
    pub oal_view: Oal,
    /// Delivered-but-unordered proposal descriptors (paper §4.3 `dpd`).
    pub dpd: Vec<UpdateDesc>,
    /// Piggybacked alive-list.
    pub alive: AliveList,
}

/// Join message: sent by a process in join state, once per own time slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Join {
    /// The joining process.
    pub sender: ProcessId,
    /// Its current incarnation.
    pub incarnation: Incarnation,
    /// Synchronized send timestamp.
    pub send_ts: SyncTime,
    /// The sender's join-list: processes it heard a join from in the last
    /// N−1 slots (always includes the sender), with incarnations.
    pub join_list: Vec<(ProcessId, Incarnation)>,
    /// Piggybacked alive-list.
    pub alive: AliveList,
}

impl Join {
    /// The join-list as a set of process ids (incarnations stripped).
    pub fn join_set(&self) -> std::collections::BTreeSet<ProcessId> {
        self.join_list.iter().map(|(p, _)| *p).collect()
    }
}

/// Multiple-failure election message, sent once per own time slot while in
/// n-failure state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reconfig {
    /// The sender.
    pub sender: ProcessId,
    /// Synchronized send timestamp.
    pub send_ts: SyncTime,
    /// The sender's reconfiguration-list: processes it received a reconfig
    /// message from in the last N−1 slots, plus itself. Sent *empty*
    /// during the one-cycle cool-down after a mixed election (paper §4.2).
    pub reconfig_list: Vec<ProcessId>,
    /// Timestamp of the last decision message the sender knows about.
    pub last_decision_ts: SyncTime,
    /// Id of the last group the sender is aware of.
    pub last_view: ViewId,
    /// The sender's current view of the oal of that last decision.
    pub oal_view: Oal,
    /// Delivered-but-unordered proposal descriptors (paper §4.3 `dpd`).
    pub dpd: Vec<UpdateDesc>,
    /// Piggybacked alive-list.
    pub alive: AliveList,
}

impl Reconfig {
    /// The reconfiguration-list as a set.
    pub fn reconfig_set(&self) -> std::collections::BTreeSet<ProcessId> {
        self.reconfig_list.iter().copied().collect()
    }
}

/// Negative acknowledgement: the sender saw descriptors in the oal for
/// proposals it never received (the loss-detection role of decision
/// messages, paper §2) and asks a holder to retransmit them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Nack {
    /// Who is missing the proposals.
    pub sender: ProcessId,
    /// Synchronized send timestamp.
    pub send_ts: SyncTime,
    /// The missing proposals.
    pub missing: Vec<ProposalId>,
}

/// Clock synchronization substrate messages (round-trip remote clock
/// reading, fail-aware style).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClockSyncMsg {
    /// "What time is it?" — carries the requester's hardware send time so
    /// the reply can echo it back for round-trip measurement.
    Request {
        /// The requester.
        sender: ProcessId,
        /// Request id (for matching replies).
        rid: u64,
        /// Requester hardware clock at send.
        hw_send: HwTime,
    },
    /// Reply carrying the responder's synchronized time.
    Reply {
        /// The responder.
        sender: ProcessId,
        /// Echoed request id.
        rid: u64,
        /// Echoed requester hardware send time.
        hw_send_echo: HwTime,
        /// Responder's synchronized clock at reply time.
        sync_at_reply: SyncTime,
        /// Whether the responder considered itself synchronized.
        synced: bool,
    },
}

impl ClockSyncMsg {
    /// The sending process.
    pub fn sender(&self) -> ProcessId {
        match self {
            ClockSyncMsg::Request { sender, .. } | ClockSyncMsg::Reply { sender, .. } => *sender,
        }
    }
}

/// Application state + undelivered proposals shipped by the decider to a
/// joining member (paper §4.2 join state).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateTransfer {
    /// The decider performing the transfer.
    pub sender: ProcessId,
    /// The joining member being brought up to date.
    pub to: ProcessId,
    /// The view in which the transfer happens.
    pub view_id: ViewId,
    /// Opaque serialized application state (retrieved via the dedicated
    /// application callback).
    pub app_state: Bytes,
    /// Undelivered proposals from the decider's proposal buffer.
    pub proposals: Vec<Proposal>,
    /// Per-sender FIFO delivery cursors (next sequence number to deliver),
    /// so the joiner continues each sender's stream where the transferred
    /// application state left off.
    pub fifo: Vec<(ProcessId, u64)>,
    /// Ordinal assignments of the shipped proposals whose descriptors
    /// have already left the oal window (stable prefix): without these
    /// the joiner could not place them in the total order — or worse,
    /// re-order them when it becomes decider.
    pub ordinals: Vec<(ProposalId, Ordinal)>,
}

/// Tag identifying a message variant (used in stats, traces and the wire
/// format).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MsgKind {
    /// [`Proposal`]
    Proposal,
    /// [`Decision`]
    Decision,
    /// [`NoDecision`]
    NoDecision,
    /// [`Join`]
    Join,
    /// [`Reconfig`]
    Reconfig,
    /// [`ClockSyncMsg`]
    ClockSync,
    /// [`StateTransfer`]
    StateTransfer,
    /// [`Nack`]
    Nack,
}

impl MsgKind {
    /// All kinds, for stats tables.
    pub const ALL: [MsgKind; 8] = [
        MsgKind::Proposal,
        MsgKind::Decision,
        MsgKind::NoDecision,
        MsgKind::Join,
        MsgKind::Reconfig,
        MsgKind::ClockSync,
        MsgKind::StateTransfer,
        MsgKind::Nack,
    ];

    /// Static label for stats ledgers and traces.
    pub fn as_str(self) -> &'static str {
        match self {
            MsgKind::Proposal => "proposal",
            MsgKind::Decision => "decision",
            MsgKind::NoDecision => "no-decision",
            MsgKind::Join => "join",
            MsgKind::Reconfig => "reconfig",
            MsgKind::ClockSync => "clock-sync",
            MsgKind::StateTransfer => "state-transfer",
            MsgKind::Nack => "nack",
        }
    }

    /// Whether the membership failure detector treats this kind as a
    /// control message (paper §4.1: decision, no-decision, join,
    /// reconfiguration).
    pub fn is_control(self) -> bool {
        matches!(
            self,
            MsgKind::Decision | MsgKind::NoDecision | MsgKind::Join | MsgKind::Reconfig
        )
    }

    /// Whether this kind belongs to the membership layer proper (i.e. is
    /// *extra* load beyond broadcast + substrate). Decision messages are
    /// part of the broadcast protocol; the failure-free claim (T1) is that
    /// zero messages of the other three control kinds flow.
    pub fn is_membership_overhead(self) -> bool {
        matches!(
            self,
            MsgKind::NoDecision | MsgKind::Join | MsgKind::Reconfig
        )
    }
}

impl fmt::Display for MsgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Any message of the service.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)]
pub enum Msg {
    /// A client update broadcast.
    Proposal(Proposal),
    /// The decider's periodic ordering/heartbeat message.
    Decision(Decision),
    /// Single-failure election message.
    NoDecision(NoDecision),
    /// Join-state message.
    Join(Join),
    /// Multiple-failure election message.
    Reconfig(Reconfig),
    /// Clock synchronization substrate.
    ClockSync(ClockSyncMsg),
    /// Join-time state transfer.
    StateTransfer(StateTransfer),
    /// Retransmission request for missed proposals.
    Nack(Nack),
}

impl Msg {
    /// This message's kind tag.
    pub fn kind(&self) -> MsgKind {
        match self {
            Msg::Proposal(_) => MsgKind::Proposal,
            Msg::Decision(_) => MsgKind::Decision,
            Msg::NoDecision(_) => MsgKind::NoDecision,
            Msg::Join(_) => MsgKind::Join,
            Msg::Reconfig(_) => MsgKind::Reconfig,
            Msg::ClockSync(_) => MsgKind::ClockSync,
            Msg::StateTransfer(_) => MsgKind::StateTransfer,
            Msg::Nack(_) => MsgKind::Nack,
        }
    }

    /// The sending process.
    pub fn sender(&self) -> ProcessId {
        match self {
            Msg::Proposal(m) => m.sender,
            Msg::Decision(m) => m.sender,
            Msg::NoDecision(m) => m.sender,
            Msg::Join(m) => m.sender,
            Msg::Reconfig(m) => m.sender,
            Msg::ClockSync(m) => m.sender(),
            Msg::StateTransfer(m) => m.sender,
            Msg::Nack(m) => m.sender,
        }
    }

    /// The synchronized send timestamp, when the message carries one
    /// (all but clock-sync and state-transfer messages).
    pub fn send_ts(&self) -> Option<SyncTime> {
        match self {
            Msg::Proposal(m) => Some(m.send_ts),
            Msg::Decision(m) => Some(m.send_ts),
            Msg::NoDecision(m) => Some(m.send_ts),
            Msg::Join(m) => Some(m.send_ts),
            Msg::Reconfig(m) => Some(m.send_ts),
            Msg::Nack(m) => Some(m.send_ts),
            Msg::ClockSync(_) | Msg::StateTransfer(_) => None,
        }
    }

    /// The piggybacked alive-list, for control messages.
    pub fn alive_list(&self) -> Option<AliveList> {
        match self {
            Msg::Decision(m) => Some(m.alive),
            Msg::NoDecision(m) => Some(m.alive),
            Msg::Join(m) => Some(m.alive),
            Msg::Reconfig(m) => Some(m.alive),
            _ => None,
        }
    }
}

impl From<Proposal> for Msg {
    fn from(m: Proposal) -> Msg {
        Msg::Proposal(m)
    }
}
impl From<Decision> for Msg {
    fn from(m: Decision) -> Msg {
        Msg::Decision(m)
    }
}
impl From<NoDecision> for Msg {
    fn from(m: NoDecision) -> Msg {
        Msg::NoDecision(m)
    }
}
impl From<Join> for Msg {
    fn from(m: Join) -> Msg {
        Msg::Join(m)
    }
}
impl From<Reconfig> for Msg {
    fn from(m: Reconfig) -> Msg {
        Msg::Reconfig(m)
    }
}
impl From<ClockSyncMsg> for Msg {
    fn from(m: ClockSyncMsg) -> Msg {
        Msg::ClockSync(m)
    }
}
impl From<StateTransfer> for Msg {
    fn from(m: StateTransfer) -> Msg {
        Msg::StateTransfer(m)
    }
}
impl From<Nack> for Msg {
    fn from(m: Nack) -> Msg {
        Msg::Nack(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_proposal() -> Proposal {
        Proposal {
            sender: ProcessId(2),
            incarnation: Incarnation(1),
            seq: 7,
            send_ts: SyncTime::from_millis(42),
            hdo: Ordinal(3),
            semantics: Semantics::TOTAL_STRONG,
            payload: Bytes::from_static(b"hello"),
        }
    }

    #[test]
    fn proposal_identity() {
        let p = sample_proposal();
        assert_eq!(p.id(), ProposalId::new(ProcessId(2), 7));
        let d = p.desc();
        assert_eq!(d.id, p.id());
        assert_eq!(d.hdo, Ordinal(3));
    }

    #[test]
    fn msg_kind_and_sender() {
        let m: Msg = sample_proposal().into();
        assert_eq!(m.kind(), MsgKind::Proposal);
        assert_eq!(m.sender(), ProcessId(2));
        assert_eq!(m.send_ts(), Some(SyncTime::from_millis(42)));
        assert!(m.alive_list().is_none());
    }

    #[test]
    fn control_classification() {
        assert!(MsgKind::Decision.is_control());
        assert!(MsgKind::NoDecision.is_control());
        assert!(MsgKind::Join.is_control());
        assert!(MsgKind::Reconfig.is_control());
        assert!(!MsgKind::Proposal.is_control());
        assert!(!MsgKind::ClockSync.is_control());
        assert!(!MsgKind::StateTransfer.is_control());
    }

    #[test]
    fn membership_overhead_excludes_decisions() {
        assert!(!MsgKind::Decision.is_membership_overhead());
        assert!(MsgKind::NoDecision.is_membership_overhead());
        assert!(MsgKind::Join.is_membership_overhead());
        assert!(MsgKind::Reconfig.is_membership_overhead());
        assert!(!MsgKind::Proposal.is_membership_overhead());
    }

    #[test]
    fn join_set_strips_incarnations() {
        let j = Join {
            sender: ProcessId(0),
            incarnation: Incarnation(2),
            send_ts: SyncTime::ZERO,
            join_list: vec![
                (ProcessId(0), Incarnation(2)),
                (ProcessId(1), Incarnation(0)),
            ],
            alive: AliveList::EMPTY,
        };
        let s = j.join_set();
        assert!(s.contains(&ProcessId(0)) && s.contains(&ProcessId(1)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn clocksync_sender() {
        let m = ClockSyncMsg::Request {
            sender: ProcessId(4),
            rid: 9,
            hw_send: HwTime(100),
        };
        assert_eq!(m.sender(), ProcessId(4));
        assert_eq!(Msg::from(m).kind(), MsgKind::ClockSync);
    }
}
