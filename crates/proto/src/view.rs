//! Group views (memberships).
//!
//! A *view* is one element of the sequence of majority groups the
//! membership protocol installs. Views are identified by a monotonically
//! increasing sequence number plus the creating decider, and carry the set
//! of member process ids.

use crate::ids::ProcessId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Identity of an installed view.
///
/// `seq` increases across the view sequence; `creator` is the decider that
/// formed the group (useful in traces and for tie-breaking diagnostics —
/// the protocol itself guarantees at most one creator per `seq`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ViewId {
    /// Position in the view sequence (the initial group has `seq == 1`).
    pub seq: u64,
    /// The decider that created the view.
    pub creator: ProcessId,
}

impl ViewId {
    /// The "no view yet" sentinel used before the initial group forms.
    pub const NONE: ViewId = ViewId {
        seq: 0,
        creator: ProcessId(u16::MAX),
    };

    /// Construct a view id.
    #[inline]
    pub fn new(seq: u64, creator: ProcessId) -> Self {
        ViewId { seq, creator }
    }

    /// Id of the successor view created by `creator`.
    #[inline]
    pub fn next(self, creator: ProcessId) -> ViewId {
        ViewId::new(self.seq + 1, creator)
    }
}

impl fmt::Display for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}@{}", self.seq, self.creator)
    }
}

/// A group view: an identified set of members.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct View {
    /// The view's identity.
    pub id: ViewId,
    /// The member set, kept sorted for deterministic iteration.
    pub members: BTreeSet<ProcessId>,
}

impl View {
    /// Construct a view from any iterator of members.
    pub fn new(id: ViewId, members: impl IntoIterator<Item = ProcessId>) -> Self {
        View {
            id,
            members: members.into_iter().collect(),
        }
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the view has no members (only the `NONE` placeholder is).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, p: ProcessId) -> bool {
        self.members.contains(&p)
    }

    /// Whether this view contains a majority of a team of size `n`.
    #[inline]
    pub fn is_majority_of(&self, n: usize) -> bool {
        self.members.len() * 2 > n
    }

    /// The member that follows `p` in the cyclic rotation order *within
    /// this view*. Rotation (decider role, no-decision ring) is over group
    /// members only, in increasing rank order, wrapping around.
    ///
    /// Returns `None` when the view is empty or `p` is its only member's
    /// sole companion source (i.e. the view has a single member).
    pub fn successor_in_group(&self, p: ProcessId) -> Option<ProcessId> {
        if self.members.is_empty() {
            return None;
        }
        // First member strictly greater than p, else wrap to the minimum.
        self.members
            .range((
                std::ops::Bound::Excluded(p),
                std::ops::Bound::Unbounded::<ProcessId>,
            ))
            .next()
            .or_else(|| self.members.iter().next())
            .copied()
    }

    /// The member that precedes `p` in the cyclic rotation order within
    /// this view.
    pub fn predecessor_in_group(&self, p: ProcessId) -> Option<ProcessId> {
        if self.members.is_empty() {
            return None;
        }
        self.members
            .range(..p)
            .next_back()
            .or_else(|| self.members.iter().next_back())
            .copied()
    }

    /// A copy of this view with `p` removed and a bumped id.
    pub fn without(&self, p: ProcessId, new_id: ViewId) -> View {
        let mut members = self.members.clone();
        members.remove(&p);
        View {
            id: new_id,
            members,
        }
    }

    /// A copy of this view with `p` added and a bumped id.
    pub fn with(&self, p: ProcessId, new_id: ViewId) -> View {
        let mut members = self.members.clone();
        members.insert(p);
        View {
            id: new_id,
            members,
        }
    }

    /// Members as a sorted `Vec` (for wire encoding and display).
    pub fn member_vec(&self) -> Vec<ProcessId> {
        self.members.iter().copied().collect()
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.id)?;
        for (i, m) in self.members.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(ids: &[u16]) -> View {
        View::new(
            ViewId::new(1, ProcessId(ids[0])),
            ids.iter().map(|&i| ProcessId(i)),
        )
    }

    #[test]
    fn majority_check() {
        assert!(view(&[0, 1, 2]).is_majority_of(5));
        assert!(!view(&[0, 1]).is_majority_of(5));
        assert!(view(&[0, 1, 2]).is_majority_of(4));
        assert!(!view(&[0, 1]).is_majority_of(4));
    }

    #[test]
    fn group_rotation_skips_non_members() {
        let v = view(&[0, 2, 4]);
        assert_eq!(v.successor_in_group(ProcessId(0)), Some(ProcessId(2)));
        assert_eq!(v.successor_in_group(ProcessId(2)), Some(ProcessId(4)));
        assert_eq!(v.successor_in_group(ProcessId(4)), Some(ProcessId(0)));
        // Rotation from a non-member lands on the next member.
        assert_eq!(v.successor_in_group(ProcessId(1)), Some(ProcessId(2)));
        assert_eq!(v.predecessor_in_group(ProcessId(0)), Some(ProcessId(4)));
        assert_eq!(v.predecessor_in_group(ProcessId(4)), Some(ProcessId(2)));
        assert_eq!(v.predecessor_in_group(ProcessId(3)), Some(ProcessId(2)));
    }

    #[test]
    fn rotation_inverse_on_members() {
        let v = view(&[1, 3, 5, 8]);
        for &m in &v.members {
            let s = v.successor_in_group(m).unwrap();
            assert_eq!(v.predecessor_in_group(s), Some(m));
        }
    }

    #[test]
    fn with_without() {
        let v = view(&[0, 1, 2]);
        let id2 = ViewId::new(2, ProcessId(1));
        let w = v.without(ProcessId(0), id2);
        assert_eq!(w.member_vec(), vec![ProcessId(1), ProcessId(2)]);
        assert_eq!(w.id, id2);
        let x = w.with(ProcessId(4), ViewId::new(3, ProcessId(1)));
        assert!(x.contains(ProcessId(4)));
        assert_eq!(x.len(), 3);
    }

    #[test]
    fn empty_view_rotation() {
        let v = View::default();
        assert!(v.is_empty());
        assert_eq!(v.successor_in_group(ProcessId(0)), None);
        assert_eq!(v.predecessor_in_group(ProcessId(0)), None);
    }

    #[test]
    fn display() {
        let v = view(&[0, 2]);
        assert_eq!(v.to_string(), "v1@p0{p0,p2}");
    }
}
