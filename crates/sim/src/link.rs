//! The datagram network model.
//!
//! A [`LinkModel`] describes every point-to-point link identically (the
//! paper's single moderately-loaded Ethernet): a base propagation delay,
//! uniform jitter, an omission probability, and a *performance failure*
//! probability — the chance a message is delivered but later than the
//! one-way timeout δ. Targeted, per-message faults (drop exactly the next
//! decision from p, delay one message past δ, …) are handled by
//! [`crate::fault`]; this module is the background behaviour.

// tw-lint: allow-file(float-state) -- loss/latency probabilities describe the
// simulated network, not protocol state; draws come from the seeded world RNG
// and delays are rounded to integral micros before entering the event queue.

use rand::Rng;
use tw_proto::Duration;

/// Stochastic behaviour of every network link.
#[derive(Debug, Clone, Copy)]
pub struct LinkModel {
    /// Minimum one-way delay.
    pub base_delay: Duration,
    /// Additional uniform jitter in `[0, jitter]`.
    pub jitter: Duration,
    /// Probability a datagram is silently dropped (omission failure).
    pub drop_prob: f64,
    /// Probability a datagram suffers a performance failure: it is
    /// delivered, but with `late_extra` added to its delay (intended to
    /// push it past the protocol's δ).
    pub late_prob: f64,
    /// Extra delay applied to late datagrams.
    pub late_extra: Duration,
}

impl Default for LinkModel {
    /// A healthy LAN: 1 ms ± 0.2 ms, no losses.
    fn default() -> Self {
        LinkModel {
            base_delay: Duration::from_micros(1_000),
            jitter: Duration::from_micros(200),
            drop_prob: 0.0,
            late_prob: 0.0,
            late_extra: Duration::ZERO,
        }
    }
}

/// The fate the link model assigns to one datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Delivered after the contained one-way delay.
    Deliver(Duration),
    /// Delivered late (performance failure) after the contained delay.
    DeliverLate(Duration),
    /// Dropped (omission failure).
    Drop,
}

impl LinkModel {
    /// A lossy variant of this model.
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// A variant that makes a fraction of datagrams late by `extra`.
    pub fn with_late(mut self, p: f64, extra: Duration) -> Self {
        self.late_prob = p;
        self.late_extra = extra;
        self
    }

    /// The worst-case timely delay of this model (base + full jitter).
    /// Protocol configurations should pick δ at or above this.
    pub fn max_timely_delay(&self) -> Duration {
        self.base_delay + self.jitter
    }

    /// Draw the fate of one datagram.
    pub fn draw<R: Rng>(&self, rng: &mut R) -> Fate {
        // Order matters for determinism: always consume the same number of
        // random draws regardless of outcome.
        let u_drop: f64 = rng.gen();
        let u_late: f64 = rng.gen();
        let u_jitter: f64 = rng.gen();
        let jitter = Duration((self.jitter.as_micros() as f64 * u_jitter).round() as i64);
        let delay = self.base_delay + jitter;
        if u_drop < self.drop_prob {
            Fate::Drop
        } else if u_late < self.late_prob {
            Fate::DeliverLate(delay + self.late_extra)
        } else {
            Fate::Deliver(delay)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_is_lossless() {
        let m = LinkModel::default();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            match m.draw(&mut rng) {
                Fate::Deliver(d) => {
                    assert!(d >= m.base_delay);
                    assert!(d <= m.base_delay + m.jitter);
                }
                other => panic!("unexpected fate {other:?}"),
            }
        }
    }

    #[test]
    fn drop_prob_is_respected() {
        let m = LinkModel::default().with_drop_prob(0.5);
        let mut rng = StdRng::seed_from_u64(42);
        let drops = (0..10_000)
            .filter(|_| matches!(m.draw(&mut rng), Fate::Drop))
            .count();
        assert!((4_000..6_000).contains(&drops), "drops={drops}");
    }

    #[test]
    fn late_messages_carry_extra_delay() {
        let m = LinkModel::default().with_late(1.0, Duration::from_millis(50));
        let mut rng = StdRng::seed_from_u64(1);
        match m.draw(&mut rng) {
            Fate::DeliverLate(d) => assert!(d >= Duration::from_millis(50)),
            other => panic!("unexpected fate {other:?}"),
        }
    }

    #[test]
    fn max_timely_delay_bounds_draws() {
        let m = LinkModel::default();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            if let Fate::Deliver(d) = m.draw(&mut rng) {
                assert!(d <= m.max_timely_delay());
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let m = LinkModel::default().with_drop_prob(0.1);
        let a: Vec<Fate> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..100).map(|_| m.draw(&mut rng)).collect()
        };
        let b: Vec<Fate> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..100).map(|_| m.draw(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
