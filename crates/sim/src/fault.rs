//! Targeted fault injection.
//!
//! The background [`LinkModel`](crate::link::LinkModel) draws random fates
//! for every datagram; experiments additionally need *surgical* faults:
//! "drop the next decision message from p2", "delay exactly one datagram
//! from p0 to p3 past δ". A [`Fault`] pairs a [`MsgMatcher`] with an
//! action and a budget of matches.

use std::fmt;
use std::rc::Rc;
use tw_proto::{Duration, ProcessId};

/// Predicate over in-flight datagrams.
#[derive(Clone)]
pub struct MsgMatcher<M> {
    /// Only datagrams from this sender (any if `None`).
    pub from: Option<ProcessId>,
    /// Only datagrams to this destination (any if `None`).
    pub to: Option<ProcessId>,
    /// Arbitrary payload predicate (always true if `None`).
    #[allow(clippy::type_complexity)]
    pub pred: Option<Rc<dyn Fn(&M) -> bool>>,
}

impl<M> Default for MsgMatcher<M> {
    fn default() -> Self {
        MsgMatcher {
            from: None,
            to: None,
            pred: None,
        }
    }
}

impl<M> MsgMatcher<M> {
    /// Match everything.
    pub fn any() -> Self {
        Self::default()
    }

    /// Restrict to a sender.
    pub fn from(mut self, p: ProcessId) -> Self {
        self.from = Some(p);
        self
    }

    /// Restrict to a destination.
    pub fn to(mut self, p: ProcessId) -> Self {
        self.to = Some(p);
        self
    }

    /// Restrict by payload predicate.
    pub fn matching(mut self, pred: impl Fn(&M) -> bool + 'static) -> Self {
        self.pred = Some(Rc::new(pred));
        self
    }

    /// Does this matcher select the given datagram?
    pub fn matches(&self, from: ProcessId, to: ProcessId, msg: &M) -> bool {
        if let Some(f) = self.from {
            if f != from {
                return false;
            }
        }
        if let Some(t) = self.to {
            if t != to {
                return false;
            }
        }
        match &self.pred {
            Some(p) => p(msg),
            None => true,
        }
    }
}

impl<M> fmt::Debug for MsgMatcher<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MsgMatcher")
            .field("from", &self.from)
            .field("to", &self.to)
            .field("pred", &self.pred.as_ref().map(|_| "<fn>"))
            .finish()
    }
}

/// What to do with a matched datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Drop it (omission failure).
    Drop,
    /// Add the given delay on top of the link delay (performance failure
    /// when the total exceeds δ).
    Delay(Duration),
}

/// A targeted fault: applies `action` to up to `budget` datagrams matched
/// by `matcher`, then expires. `budget == None` means unlimited.
#[derive(Debug, Clone)]
pub struct Fault<M> {
    /// Which datagrams are affected.
    pub matcher: MsgMatcher<M>,
    /// What happens to them.
    pub action: FaultAction,
    /// How many more datagrams this fault may affect.
    pub budget: Option<u32>,
}

impl<M> Fault<M> {
    /// Drop the next `count` datagrams matching `matcher`.
    pub fn drop_next(matcher: MsgMatcher<M>, count: u32) -> Self {
        Fault {
            matcher,
            action: FaultAction::Drop,
            budget: Some(count),
        }
    }

    /// Delay the next `count` matching datagrams by `extra`.
    pub fn delay_next(matcher: MsgMatcher<M>, count: u32, extra: Duration) -> Self {
        Fault {
            matcher,
            action: FaultAction::Delay(extra),
            budget: Some(count),
        }
    }

    /// Drop every matching datagram until the fault is cleared.
    pub fn drop_all(matcher: MsgMatcher<M>) -> Self {
        Fault {
            matcher,
            action: FaultAction::Drop,
            budget: None,
        }
    }

    /// If this fault matches, consume one unit of budget and return the
    /// action. Returns `None` when it doesn't match or is exhausted.
    pub fn apply(&mut self, from: ProcessId, to: ProcessId, msg: &M) -> Option<FaultAction> {
        if let Some(0) = self.budget {
            return None;
        }
        if !self.matcher.matches(from, to, msg) {
            return None;
        }
        if let Some(b) = &mut self.budget {
            *b -= 1;
        }
        Some(self.action)
    }

    /// True once the budget is used up.
    pub fn exhausted(&self) -> bool {
        self.budget == Some(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matcher_filters_endpoints() {
        let m: MsgMatcher<u32> = MsgMatcher::any().from(ProcessId(1)).to(ProcessId(2));
        assert!(m.matches(ProcessId(1), ProcessId(2), &0));
        assert!(!m.matches(ProcessId(0), ProcessId(2), &0));
        assert!(!m.matches(ProcessId(1), ProcessId(3), &0));
    }

    #[test]
    fn matcher_payload_predicate() {
        let m: MsgMatcher<u32> = MsgMatcher::any().matching(|v| *v > 10);
        assert!(m.matches(ProcessId(0), ProcessId(1), &11));
        assert!(!m.matches(ProcessId(0), ProcessId(1), &9));
    }

    #[test]
    fn fault_budget_decrements_and_expires() {
        let mut f: Fault<u32> = Fault::drop_next(MsgMatcher::any(), 2);
        assert_eq!(
            f.apply(ProcessId(0), ProcessId(1), &0),
            Some(FaultAction::Drop)
        );
        assert!(!f.exhausted());
        assert_eq!(
            f.apply(ProcessId(0), ProcessId(1), &0),
            Some(FaultAction::Drop)
        );
        assert!(f.exhausted());
        assert_eq!(f.apply(ProcessId(0), ProcessId(1), &0), None);
    }

    #[test]
    fn non_matching_does_not_consume_budget() {
        let mut f: Fault<u32> = Fault::drop_next(MsgMatcher::any().from(ProcessId(5)), 1);
        assert_eq!(f.apply(ProcessId(0), ProcessId(1), &0), None);
        assert!(!f.exhausted());
        assert_eq!(
            f.apply(ProcessId(5), ProcessId(1), &0),
            Some(FaultAction::Drop)
        );
    }

    #[test]
    fn unlimited_fault_never_exhausts() {
        let mut f: Fault<u32> = Fault::drop_all(MsgMatcher::any());
        for _ in 0..100 {
            assert!(f.apply(ProcessId(0), ProcessId(1), &0).is_some());
        }
        assert!(!f.exhausted());
    }

    #[test]
    fn delay_action_carries_duration() {
        let mut f: Fault<u32> = Fault::delay_next(MsgMatcher::any(), 1, Duration::from_millis(30));
        assert_eq!(
            f.apply(ProcessId(0), ProcessId(1), &0),
            Some(FaultAction::Delay(Duration::from_millis(30)))
        );
    }
}
