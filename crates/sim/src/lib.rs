//! # tw-sim — deterministic discrete-event simulation substrate
//!
//! The paper's evaluation environment was a handful of SGI workstations on
//! a 10 Mb/s Ethernet speaking UDP. What the timewheel protocols actually
//! *assume* of that environment is the **timed asynchronous system model**:
//!
//! * a datagram service with *omission/performance* failure semantics —
//!   messages are lost or late (past the one-way timeout δ), never
//!   corrupted or duplicated in undetectable ways;
//! * processes with *crash/performance* failure semantics and a maximum
//!   scheduling delay σ;
//! * local hardware clocks with bounded drift ρ, unsynchronized.
//!
//! This crate implements exactly that model as a deterministic, seeded
//! discrete-event simulator, so every experiment in the benchmark harness
//! is reproducible bit-for-bit and timing claims can be *measured* rather
//! than eyeballed. See DESIGN.md §2 for the substitution argument.
//!
//! ## Shape
//!
//! A [`World`] owns `N` processes (all the same [`Actor`] type), a
//! [`LinkModel`] describing the network, per-process [`HardwareClock`]s,
//! fault injection ([`fault::Fault`], partitions, crash/recovery scripts)
//! and a [`stats::Stats`] ledger. Actors interact with the world only
//! through [`Ctx`] effects — send/broadcast/timers/traces — which keeps
//! them deterministic state machines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod engine;
pub mod explore;
pub mod fault;
pub mod link;
pub mod stats;
pub mod time;

/// Commonly used items.
pub mod prelude {
    pub use crate::clock::{ClockConfig, HardwareClock};
    pub use crate::engine::{Actor, Ctx, Payload, ProcessStatus, TimerId, World, WorldConfig};
    pub use crate::fault::{Fault, MsgMatcher};
    pub use crate::link::LinkModel;
    pub use crate::stats::Stats;
    pub use crate::time::SimTime;
}

pub use prelude::*;
