//! Simulated real time.
//!
//! [`SimTime`] is the simulator's global ("true") time base — the time an
//! omniscient observer would read. No process ever sees it directly:
//! processes read their drifting [`HardwareClock`](crate::clock) or the
//! synchronized clock built on top. Experiments, however, measure
//! latencies in `SimTime`, which is exactly the observer's stopwatch the
//! paper's timed specification is phrased in.

// tw-lint: allow-file(float-state) -- f64 only in the as_secs_f64 stats/plot
// conversion; event ordering and arithmetic are integral microseconds.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};
use tw_proto::Duration;

/// An instant of simulated real time, in microseconds from simulation
/// start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SimTime(pub i64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);
    /// A time later than every event (used as "run forever" horizon).
    pub const MAX: SimTime = SimTime(i64::MAX);

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: i64) -> Self {
        SimTime(us)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: i64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: i64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since simulation start.
    #[inline]
    pub const fn as_micros(self) -> i64 {
        self.0
    }

    /// Fractional seconds since simulation start.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Elapsed duration since `earlier` (may be negative).
    #[inline]
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0 - earlier.0)
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: Duration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, d: Duration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl SubAssign<Duration> for SimTime {
    #[inline]
    fn sub_assign(&mut self, d: Duration) {
        self.0 -= d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    #[inline]
    fn sub(self, other: SimTime) -> Duration {
        Duration(self.0 - other.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10);
        assert_eq!(t + Duration::from_millis(5), SimTime::from_millis(15));
        assert_eq!(t - Duration::from_millis(5), SimTime::from_millis(5));
        assert_eq!(
            SimTime::from_millis(15) - SimTime::from_millis(10),
            Duration::from_millis(5)
        );
        assert_eq!(t.since(SimTime::ZERO), Duration::from_millis(10));
    }

    #[test]
    fn conversions_and_ordering() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(
            SimTime::from_millis(1).max(SimTime::from_millis(2)),
            SimTime::from_millis(2)
        );
        assert_eq!(
            SimTime::from_millis(1).min(SimTime::from_millis(2)),
            SimTime::from_millis(1)
        );
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "t=1.500000s");
    }
}
