//! Message and delivery accounting.
//!
//! The failure-free-load experiment (T1) is a *counting* argument: during
//! stable periods the only traffic is the broadcast protocol's decision
//! rotation — zero no-decision/join/reconfiguration messages. [`Stats`]
//! keeps the ledgers that make that measurable, keyed by the payload's
//! kind label.
//!
//! Two granularities are tracked: *sends* (one per `send`/`broadcast` call
//! — what a process pays, and what a broadcast Ethernet carries) and
//! *datagrams* (one per destination — what a unicast fan-out would carry).

use std::collections::BTreeMap;
use tw_proto::ProcessId;

/// Counters for one message kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCounters {
    /// send/broadcast operations.
    pub sends: u64,
    /// per-destination datagrams put on the wire.
    pub datagrams: u64,
    /// datagrams delivered to a live process.
    pub delivered: u64,
    /// datagrams dropped (background omission or injected fault).
    pub dropped: u64,
    /// datagrams delivered late (performance failure).
    pub late: u64,
    /// datagrams discarded because the destination was crashed.
    pub to_crashed: u64,
}

/// The world's message ledger.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    by_kind: BTreeMap<&'static str, KindCounters>,
    sends_by_process: BTreeMap<ProcessId, u64>,
}

impl Stats {
    /// Fresh, empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear all counters (e.g. after warm-up, to measure steady state).
    pub fn reset(&mut self) {
        self.by_kind.clear();
        self.sends_by_process.clear();
    }

    fn kind_mut(&mut self, kind: &'static str) -> &mut KindCounters {
        self.by_kind.entry(kind).or_default()
    }

    /// Record one send/broadcast operation by `from`.
    pub fn record_send(&mut self, kind: &'static str, from: ProcessId) {
        self.kind_mut(kind).sends += 1;
        *self.sends_by_process.entry(from).or_default() += 1;
    }

    /// Record one datagram put on the wire.
    pub fn record_datagram(&mut self, kind: &'static str) {
        self.kind_mut(kind).datagrams += 1;
    }

    /// Record a datagram delivered to a live destination.
    pub fn record_delivered(&mut self, kind: &'static str, late: bool) {
        let k = self.kind_mut(kind);
        k.delivered += 1;
        if late {
            k.late += 1;
        }
    }

    /// Record a dropped datagram.
    pub fn record_dropped(&mut self, kind: &'static str) {
        self.kind_mut(kind).dropped += 1;
    }

    /// Record a datagram that arrived at a crashed process.
    pub fn record_to_crashed(&mut self, kind: &'static str) {
        self.kind_mut(kind).to_crashed += 1;
    }

    /// Counters for one kind (zeros if never seen).
    pub fn kind(&self, kind: &str) -> KindCounters {
        self.by_kind.get(kind).copied().unwrap_or_default()
    }

    /// Iterate `(kind, counters)` pairs, sorted by kind.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &KindCounters)> {
        self.by_kind.iter().map(|(k, v)| (*k, v))
    }

    /// Total send operations across all kinds.
    pub fn total_sends(&self) -> u64 {
        self.by_kind.values().map(|c| c.sends).sum()
    }

    /// Total sends of the kinds named in `kinds`.
    pub fn sends_of(&self, kinds: &[&str]) -> u64 {
        kinds.iter().map(|k| self.kind(k).sends).sum()
    }

    /// Sends per process, sorted by process id.
    pub fn sends_by_process(&self) -> Vec<(ProcessId, u64)> {
        self.sends_by_process
            .iter()
            .map(|(p, c)| (*p, *c))
            .collect()
    }

    /// Largest per-process send count minus smallest, over processes that
    /// sent anything — a quick skew measure for the load-balance claim
    /// (the decider role rotates, so decision load is even).
    pub fn send_skew(&self) -> u64 {
        let max = self.sends_by_process.values().max().copied().unwrap_or(0);
        let min = self.sends_by_process.values().min().copied().unwrap_or(0);
        max - min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.record_send("decision", ProcessId(0));
        s.record_send("decision", ProcessId(1));
        s.record_datagram("decision");
        s.record_delivered("decision", false);
        s.record_delivered("decision", true);
        s.record_dropped("decision");
        let k = s.kind("decision");
        assert_eq!(k.sends, 2);
        assert_eq!(k.datagrams, 1);
        assert_eq!(k.delivered, 2);
        assert_eq!(k.late, 1);
        assert_eq!(k.dropped, 1);
    }

    #[test]
    fn unseen_kind_is_zero() {
        let s = Stats::new();
        assert_eq!(s.kind("join"), KindCounters::default());
        assert_eq!(s.total_sends(), 0);
    }

    #[test]
    fn sends_of_sums_selected_kinds() {
        let mut s = Stats::new();
        s.record_send("join", ProcessId(0));
        s.record_send("reconfig", ProcessId(0));
        s.record_send("decision", ProcessId(0));
        assert_eq!(s.sends_of(&["join", "reconfig"]), 2);
        assert_eq!(s.total_sends(), 3);
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = Stats::new();
        s.record_send("decision", ProcessId(0));
        s.reset();
        assert_eq!(s.total_sends(), 0);
        assert!(s.sends_by_process().is_empty());
    }

    #[test]
    fn skew_measures_imbalance() {
        let mut s = Stats::new();
        for _ in 0..5 {
            s.record_send("decision", ProcessId(0));
        }
        for _ in 0..3 {
            s.record_send("decision", ProcessId(1));
        }
        assert_eq!(s.send_skew(), 2);
    }
}
