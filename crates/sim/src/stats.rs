//! Message and delivery accounting.
//!
//! The failure-free-load experiment (T1) is a *counting* argument: during
//! stable periods the only traffic is the broadcast protocol's decision
//! rotation — zero no-decision/join/reconfiguration messages. [`Stats`]
//! keeps the ledgers that make that measurable, keyed by the payload's
//! kind label.
//!
//! Two granularities are tracked: *sends* (one per `send`/`broadcast` call
//! — what a process pays, and what a broadcast Ethernet carries) and
//! *datagrams* (one per destination — what a unicast fan-out would carry).
//!
//! Since the observability pass, the ledger is backed by a shared
//! [`tw_obs::Registry`], so the same counters a live deployment exports as
//! JSON are the ones the simulator's tests assert on. Counter names follow
//! `<ledger>.<kind>` (e.g. `sends.decision`, `dropped.join`) plus
//! `sends.by_process.<pid>` for the per-process load ledger. The historical
//! `Stats` API is preserved on top of the registry so T1–T11 and every
//! bench binary keep working unchanged.

use std::collections::BTreeMap;
use tw_obs::{Counter, Registry, Snapshot};
use tw_proto::ProcessId;

/// Counters for one message kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCounters {
    /// send/broadcast operations.
    pub sends: u64,
    /// per-destination datagrams put on the wire.
    pub datagrams: u64,
    /// datagrams delivered to a live process.
    pub delivered: u64,
    /// datagrams dropped (background omission or injected fault).
    pub dropped: u64,
    /// datagrams delivered late (performance failure).
    pub late: u64,
    /// datagrams discarded because the destination was crashed.
    pub to_crashed: u64,
}

/// Cached registry handles for one message kind — one counter per ledger.
#[derive(Debug, Clone)]
struct KindHandles {
    sends: Counter,
    datagrams: Counter,
    delivered: Counter,
    dropped: Counter,
    late: Counter,
    to_crashed: Counter,
}

impl KindHandles {
    fn register(registry: &Registry, kind: &str) -> Self {
        Self {
            sends: registry.counter(&format!("sends.{kind}")),
            datagrams: registry.counter(&format!("datagrams.{kind}")),
            delivered: registry.counter(&format!("delivered.{kind}")),
            dropped: registry.counter(&format!("dropped.{kind}")),
            late: registry.counter(&format!("late.{kind}")),
            to_crashed: registry.counter(&format!("to_crashed.{kind}")),
        }
    }

    fn values(&self) -> KindCounters {
        KindCounters {
            sends: self.sends.get(),
            datagrams: self.datagrams.get(),
            delivered: self.delivered.get(),
            dropped: self.dropped.get(),
            late: self.late.get(),
            to_crashed: self.to_crashed.get(),
        }
    }
}

/// The world's message ledger, backed by a [`Registry`].
#[derive(Debug, Default)]
pub struct Stats {
    registry: Registry,
    by_kind: BTreeMap<&'static str, KindHandles>,
    sends_by_process: BTreeMap<ProcessId, Counter>,
    wire_handles: Option<WireHandles>,
}

/// Counters for the coalesced wire model (`wire.datagrams`,
/// `wire.flushes`): what a batching runtime actually puts on the wire —
/// at most one datagram per destination per dispatch — alongside the
/// historical per-message `datagrams` ledger, which is deliberately left
/// unchanged so T1–T11 stay comparable across the batching change.
#[derive(Debug, Clone)]
struct WireHandles {
    datagrams: Counter,
    flushes: Counter,
}

impl Stats {
    /// Fresh, empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear all counters (e.g. after warm-up, to measure steady state).
    pub fn reset(&mut self) {
        self.registry = Registry::new();
        self.by_kind.clear();
        self.sends_by_process.clear();
        self.wire_handles = None;
    }

    /// The metrics registry behind the ledger. Useful for exporting the
    /// simulator's counters in the same JSON shape a live node produces.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A point-in-time copy of every counter, exportable as JSON.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    fn kind_mut(&mut self, kind: &'static str) -> &KindHandles {
        let registry = &self.registry;
        self.by_kind
            .entry(kind)
            .or_insert_with(|| KindHandles::register(registry, kind))
    }

    /// Record one send/broadcast operation by `from`.
    pub fn record_send(&mut self, kind: &'static str, from: ProcessId) {
        self.kind_mut(kind).sends.inc();
        let registry = &self.registry;
        self.sends_by_process
            .entry(from)
            .or_insert_with(|| registry.counter(&format!("sends.by_process.{}", from.0)))
            .inc();
    }

    /// Record one datagram put on the wire.
    pub fn record_datagram(&mut self, kind: &'static str) {
        self.kind_mut(kind).datagrams.inc();
    }

    /// Record one dispatch flush under the coalesced wire model:
    /// `datagrams` destinations received at least one message, so a
    /// batching runtime pays `datagrams` wire datagrams for the whole
    /// dispatch. A flush that sent nothing is not recorded.
    pub fn record_wire_flush(&mut self, datagrams: u64) {
        if datagrams == 0 {
            return;
        }
        let registry = &self.registry;
        let h = self.wire_handles.get_or_insert_with(|| WireHandles {
            datagrams: registry.counter("wire.datagrams"),
            flushes: registry.counter("wire.flushes"),
        });
        h.flushes.inc();
        h.datagrams.add(datagrams);
    }

    /// Coalesced wire datagrams (≤ the per-message `datagrams` total;
    /// the gap is what batching saves).
    pub fn wire_datagrams(&self) -> u64 {
        self.wire_handles
            .as_ref()
            .map(|h| h.datagrams.get())
            .unwrap_or(0)
    }

    /// Dispatch flushes that put at least one datagram on the wire.
    pub fn wire_flushes(&self) -> u64 {
        self.wire_handles
            .as_ref()
            .map(|h| h.flushes.get())
            .unwrap_or(0)
    }

    /// Record a datagram delivered to a live destination.
    pub fn record_delivered(&mut self, kind: &'static str, late: bool) {
        let k = self.kind_mut(kind);
        k.delivered.inc();
        if late {
            k.late.inc();
        }
    }

    /// Record a dropped datagram.
    pub fn record_dropped(&mut self, kind: &'static str) {
        self.kind_mut(kind).dropped.inc();
    }

    /// Record a datagram that arrived at a crashed process.
    pub fn record_to_crashed(&mut self, kind: &'static str) {
        self.kind_mut(kind).to_crashed.inc();
    }

    /// Counters for one kind (zeros if never seen).
    pub fn kind(&self, kind: &str) -> KindCounters {
        self.by_kind
            .get(kind)
            .map(KindHandles::values)
            .unwrap_or_default()
    }

    /// Iterate `(kind, counters)` pairs, sorted by kind.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, KindCounters)> + '_ {
        self.by_kind.iter().map(|(k, v)| (*k, v.values()))
    }

    /// Total send operations across all kinds.
    pub fn total_sends(&self) -> u64 {
        self.by_kind.values().map(|c| c.sends.get()).sum()
    }

    /// Total sends of the kinds named in `kinds`.
    pub fn sends_of(&self, kinds: &[&str]) -> u64 {
        kinds.iter().map(|k| self.kind(k).sends).sum()
    }

    /// Sends per process, sorted by process id.
    pub fn sends_by_process(&self) -> Vec<(ProcessId, u64)> {
        self.sends_by_process
            .iter()
            .map(|(p, c)| (*p, c.get()))
            .collect()
    }

    /// Largest per-process send count minus smallest, over processes that
    /// sent anything — a quick skew measure for the load-balance claim
    /// (the decider role rotates, so decision load is even).
    pub fn send_skew(&self) -> u64 {
        let max = self
            .sends_by_process
            .values()
            .map(Counter::get)
            .max()
            .unwrap_or(0);
        let min = self
            .sends_by_process
            .values()
            .map(Counter::get)
            .min()
            .unwrap_or(0);
        max - min
    }
}

impl Clone for Stats {
    /// Deep copy: counter handles share their cell, so a derived clone
    /// would alias the original's counters. Clone into a fresh registry
    /// carrying the current values instead.
    fn clone(&self) -> Self {
        let mut out = Stats::new();
        for (kind, handles) in &self.by_kind {
            let fresh = out.kind_mut(kind);
            let v = handles.values();
            fresh.sends.add(v.sends);
            fresh.datagrams.add(v.datagrams);
            fresh.delivered.add(v.delivered);
            fresh.dropped.add(v.dropped);
            fresh.late.add(v.late);
            fresh.to_crashed.add(v.to_crashed);
        }
        for (pid, c) in &self.sends_by_process {
            let registry = &out.registry;
            out.sends_by_process
                .entry(*pid)
                .or_insert_with(|| registry.counter(&format!("sends.by_process.{}", pid.0)))
                .add(c.get());
        }
        if let Some(h) = &self.wire_handles {
            let fresh = WireHandles {
                datagrams: out.registry.counter("wire.datagrams"),
                flushes: out.registry.counter("wire.flushes"),
            };
            fresh.datagrams.add(h.datagrams.get());
            fresh.flushes.add(h.flushes.get());
            out.wire_handles = Some(fresh);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.record_send("decision", ProcessId(0));
        s.record_send("decision", ProcessId(1));
        s.record_datagram("decision");
        s.record_delivered("decision", false);
        s.record_delivered("decision", true);
        s.record_dropped("decision");
        let k = s.kind("decision");
        assert_eq!(k.sends, 2);
        assert_eq!(k.datagrams, 1);
        assert_eq!(k.delivered, 2);
        assert_eq!(k.late, 1);
        assert_eq!(k.dropped, 1);
    }

    #[test]
    fn wire_flushes_accumulate_and_skip_empty() {
        let mut s = Stats::new();
        s.record_wire_flush(0); // nothing sent: not a flush
        assert_eq!(s.wire_flushes(), 0);
        assert_eq!(s.wire_datagrams(), 0);
        s.record_wire_flush(4);
        s.record_wire_flush(1);
        assert_eq!(s.wire_flushes(), 2);
        assert_eq!(s.wire_datagrams(), 5);
        assert_eq!(s.registry().counter_value("wire.datagrams"), 5);
        assert_eq!(s.registry().counter_value("wire.flushes"), 2);
        s.reset();
        assert_eq!(s.wire_datagrams(), 0);
        assert_eq!(s.wire_flushes(), 0);
    }

    #[test]
    fn unseen_kind_is_zero() {
        let s = Stats::new();
        assert_eq!(s.kind("join"), KindCounters::default());
        assert_eq!(s.total_sends(), 0);
    }

    #[test]
    fn sends_of_sums_selected_kinds() {
        let mut s = Stats::new();
        s.record_send("join", ProcessId(0));
        s.record_send("reconfig", ProcessId(0));
        s.record_send("decision", ProcessId(0));
        assert_eq!(s.sends_of(&["join", "reconfig"]), 2);
        assert_eq!(s.total_sends(), 3);
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = Stats::new();
        s.record_send("decision", ProcessId(0));
        s.reset();
        assert_eq!(s.total_sends(), 0);
        assert!(s.sends_by_process().is_empty());
        assert!(s.snapshot().to_json().starts_with('{'));
    }

    #[test]
    fn skew_measures_imbalance() {
        let mut s = Stats::new();
        for _ in 0..5 {
            s.record_send("decision", ProcessId(0));
        }
        for _ in 0..3 {
            s.record_send("decision", ProcessId(1));
        }
        assert_eq!(s.send_skew(), 2);
    }

    #[test]
    fn registry_mirrors_the_ledger() {
        let mut s = Stats::new();
        s.record_send("decision", ProcessId(3));
        s.record_dropped("join");
        assert_eq!(s.registry().counter_value("sends.decision"), 1);
        assert_eq!(s.registry().counter_value("dropped.join"), 1);
        assert_eq!(s.registry().counter_value("sends.by_process.3"), 1);
        let json = s.snapshot().to_json();
        assert!(json.contains("\"sends.decision\":1"), "{json}");
    }

    #[test]
    fn clone_is_a_deep_copy() {
        let mut s = Stats::new();
        s.record_send("decision", ProcessId(0));
        let c = s.clone();
        s.record_send("decision", ProcessId(0));
        assert_eq!(s.kind("decision").sends, 2);
        assert_eq!(c.kind("decision").sends, 1);
        assert_eq!(c.send_skew(), 0);
    }
}
