//! Exhaustive small-scope schedule exploration (bounded model checking).
//!
//! The seeded [`World`](crate::World) replays *one* schedule per seed.
//! This module instead enumerates **every** delivery interleaving, crash
//! placement and omission-fault placement a small configuration admits,
//! within explicit budgets — turning per-seed invariant checks into a
//! bounded model-checking pass in the spirit of TLC/Shuttle/Loom, scoped
//! to the actor model the engine already enforces.
//!
//! ## Semantics
//!
//! * Each process owns a monotone local hardware clock that advances to
//!   the execution time of the events it handles (timers fire at their
//!   deadline or later; a delivery happens no earlier than
//!   `send + min_latency`). Clocks are driven apart only by the schedule
//!   itself — the explorer checks *safety under adversarial scheduling
//!   and skew*, not timeliness (a liveness concern the timed world
//!   measures instead).
//! * A schedule step is one of: deliver a pending message, drop a
//!   pending message (omission fault, budgeted), fire a process's
//!   earliest pending timer, or crash a process (budgeted, permanent).
//! * Exploration is a depth-first search over schedules; terminal states
//!   (no enabled step, or all remaining steps beyond budget) are handed
//!   to a caller-supplied checker.
//!
//! ## Partial-order reduction
//!
//! Two steps are *independent* when they touch different processes: a
//! delivery only mutates its recipient (plus appends in-flight
//! messages, which commute as a multiset), a timer firing only its
//! owner, a crash only its victim. The explorer prunes
//! schedule-equivalent interleavings with **sleep sets** over that
//! relation (Godefroid-style DPOR). Budget exhaustion is deliberately
//! *not* part of the relation, so near the budget boundary the pruned
//! search may truncate a few equivalent-prefix schedules differently
//! than full enumeration; pass [`ExploreConfig::dpor`] `= false` for
//! exact exhaustive enumeration (the test suite cross-checks both).

use crate::engine::{Actor, Ctx, Effect, TimerId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};
use tw_proto::{Duration, HwTime, ProcessId};

/// Identity of an in-flight message: `(recipient, sender, sender-seq)`.
///
/// Sender sequence numbers are assigned per sender in emission order,
/// which is a schedule-invariant labelling for commuting steps — the
/// cornerstone the sleep sets rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MsgKey {
    /// The recipient.
    pub to: ProcessId,
    /// The sender.
    pub from: ProcessId,
    /// Index in the sender's emission order.
    pub seq: u64,
}

/// One step of a schedule, as reported in violation traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Step {
    /// Deliver the identified in-flight message.
    Deliver(MsgKey),
    /// Drop the identified in-flight message (omission fault).
    Drop(MsgKey),
    /// Fire the identified process's pending timer.
    Fire(ProcessId, TimerId),
    /// Crash the process (permanent within the explored window).
    Crash(ProcessId),
}

impl Step {
    /// The process whose state this step mutates.
    fn target(self) -> Option<ProcessId> {
        match self {
            Step::Deliver(k) => Some(k.to),
            Step::Drop(_) => None,
            Step::Fire(p, _) => Some(p),
            Step::Crash(p) => Some(p),
        }
    }

    /// Schedule-equivalence independence: may `self` and `other` be
    /// swapped in a schedule without changing any process's observable
    /// history? Conservative: fault steps (drops, crashes) interfere
    /// with each other through their shared budgets.
    fn independent(self, other: Step) -> bool {
        let budget_coupled = |s: Step| matches!(s, Step::Drop(_) | Step::Crash(_));
        if budget_coupled(self) && budget_coupled(other) {
            return false;
        }
        // A drop of message k conflicts with any step involving k.
        let key = |s: Step| match s {
            Step::Deliver(k) | Step::Drop(k) => Some(k),
            _ => None,
        };
        if let (Some(a), Some(b)) = (key(self), key(other)) {
            if a == b {
                return false;
            }
        }
        match (self.target(), other.target()) {
            (Some(a), Some(b)) => a != b,
            _ => true,
        }
    }
}

impl std::fmt::Display for Step {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Step::Deliver(k) => write!(f, "deliver {}->{} #{}", k.from, k.to, k.seq),
            Step::Drop(k) => write!(f, "drop {}->{} #{}", k.from, k.to, k.seq),
            Step::Fire(p, id) => write!(f, "fire {} t{}", p, id.0),
            Step::Crash(p) => write!(f, "crash {}", p),
        }
    }
}

/// Budgets and knobs bounding the explored schedule space.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Total message deliveries per schedule.
    pub max_deliveries: usize,
    /// Timer firings per process per schedule.
    pub max_timer_fires_per_proc: usize,
    /// Processes that may crash (each placement is explored at every
    /// point of every schedule).
    pub crash_budget: usize,
    /// Messages that may be dropped (omission-fault placements).
    pub drop_budget: usize,
    /// Minimum one-way message latency (stamps delivery times).
    pub min_latency: Duration,
    /// Optional clock-skew bound: a step is disabled while it would push
    /// its process further than this ahead of the slowest live process.
    /// `None` explores unbounded skew.
    pub max_skew: Option<Duration>,
    /// Hard cap on schedules (terminal states); exploration reports
    /// truncation when it hits the cap.
    pub max_schedules: u64,
    /// Stop after this many violating schedules (0 = collect all).
    pub max_violations: usize,
    /// Sleep-set partial-order reduction (`false` = exact enumeration).
    pub dpor: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_deliveries: 30,
            max_timer_fires_per_proc: 4,
            crash_budget: 0,
            drop_budget: 0,
            min_latency: Duration::from_micros(1_000),
            max_skew: None,
            max_schedules: 5_000_000,
            max_violations: 8,
            dpor: true,
        }
    }
}

/// A schedule that ended in a state violating the caller's checker.
#[derive(Debug, Clone)]
pub struct ScheduleViolation {
    /// The steps executed, in order (starts are implicit).
    pub schedule: Vec<Step>,
    /// The checker's findings at the terminal state.
    pub violations: Vec<String>,
}

/// Aggregate result of an exploration.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Terminal states reached (complete schedules).
    pub schedules: u64,
    /// Steps executed across all schedules.
    pub transitions: u64,
    /// Steps skipped by the sleep-set reduction.
    pub sleep_pruned: u64,
    /// Violating schedules found (bounded by `max_violations`).
    pub violations: Vec<ScheduleViolation>,
    /// True when `max_schedules` stopped the search early.
    pub truncated: bool,
}

impl ExploreReport {
    /// Did every explored schedule satisfy the checker?
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

struct PendingMsg<M> {
    msg: M,
    send_hw: HwTime,
}

impl<M: Clone> Clone for PendingMsg<M> {
    fn clone(&self) -> Self {
        PendingMsg {
            msg: self.msg.clone(),
            send_hw: self.send_hw,
        }
    }
}

/// One process's explorer-side bookkeeping.
#[derive(Clone)]
struct ProcState {
    up: bool,
    local_hw: HwTime,
    next_timer_id: u64,
    /// Pending timers: id → (deadline, token). Fires in deadline order
    /// (ties by id), matching the engine's `(time, seq)` total order.
    timers: BTreeMap<TimerId, (HwTime, u64)>,
    timer_fires: usize,
}

/// The explorer's world state (cloned at every branch point).
struct ExpState<A: Actor> {
    actors: Vec<A>,
    procs: Vec<ProcState>,
    pending: BTreeMap<MsgKey, PendingMsg<A::Msg>>,
    next_msg_seq: Vec<u64>,
    deliveries: usize,
    crashes_left: usize,
    drops_left: usize,
}

impl<A: Actor + Clone> Clone for ExpState<A> {
    fn clone(&self) -> Self {
        ExpState {
            actors: self.actors.clone(),
            procs: self.procs.clone(),
            pending: self.pending.clone(),
            next_msg_seq: self.next_msg_seq.clone(),
            deliveries: self.deliveries,
            crashes_left: self.crashes_left,
            drops_left: self.drops_left,
        }
    }
}

/// The exhaustive schedule explorer. Construct with [`Explorer::new`],
/// run with [`Explorer::run`].
pub struct Explorer<A: Actor, F> {
    cfg: ExploreConfig,
    check: F,
    report: ExploreReport,
    schedule: Vec<Step>,
    rng: StdRng,
    effects: Vec<Effect<A::Msg>>,
    done: bool,
}

impl<A, F> Explorer<A, F>
where
    A: Actor + Clone,
    A::Msg: Clone,
    F: FnMut(&[A]) -> Vec<String>,
{
    /// Build an explorer over the given configuration and terminal-state
    /// checker. The checker returns human-readable violation strings
    /// (empty = state is fine).
    pub fn new(cfg: ExploreConfig, check: F) -> Self {
        Explorer {
            cfg,
            check,
            report: ExploreReport::default(),
            schedule: Vec::new(),
            // Actors under exploration are expected not to consume
            // randomness (the lint's ambient-rng rule plus Ctx-only
            // discipline); this fixed stream keeps any stray draw
            // deterministic per process invocation.
            rng: StdRng::seed_from_u64(0),
            effects: Vec::new(),
            done: false,
        }
    }

    /// Explore every schedule for the given initial actors. `on_start`
    /// runs for each process (in pid order — starts commute) before
    /// branching begins.
    pub fn run(mut self, actors: Vec<A>) -> ExploreReport {
        let n = actors.len();
        let mut st = ExpState {
            actors,
            procs: vec![
                ProcState {
                    up: true,
                    local_hw: HwTime::ZERO,
                    next_timer_id: 1,
                    timers: BTreeMap::new(),
                    timer_fires: 0,
                };
                n
            ],
            pending: BTreeMap::new(),
            next_msg_seq: vec![0; n],
            deliveries: 0,
            crashes_left: self.cfg.crash_budget,
            drops_left: self.cfg.drop_budget,
        };
        for pid in 0..n {
            self.invoke(&mut st, ProcessId(pid as u16), Invoke::Start);
        }
        self.dfs(&st, BTreeSet::new());
        self.report
    }

    // ---- step enumeration and execution --------------------------------

    /// All steps enabled at `st`, in canonical order.
    fn enabled(&self, st: &ExpState<A>) -> Vec<Step> {
        let mut out = Vec::new();
        let deliver_ok = st.deliveries < self.cfg.max_deliveries;
        for (k, m) in &st.pending {
            debug_assert!(st.procs[k.to.rank()].up, "stale msg to crashed proc");
            if deliver_ok && self.skew_ok(st, self.deliver_time(st, *k, m)) {
                out.push(Step::Deliver(*k));
            }
            if st.drops_left > 0 {
                out.push(Step::Drop(*k));
            }
        }
        for (i, p) in st.procs.iter().enumerate() {
            let pid = ProcessId(i as u16);
            if !p.up {
                continue;
            }
            if p.timer_fires < self.cfg.max_timer_fires_per_proc {
                if let Some((id, deadline)) = earliest_timer(p) {
                    if self.skew_ok(st, deadline.max(p.local_hw)) {
                        out.push(Step::Fire(pid, id));
                    }
                }
            }
            if st.crashes_left > 0 {
                out.push(Step::Crash(pid));
            }
        }
        out
    }

    fn deliver_time(&self, st: &ExpState<A>, k: MsgKey, m: &PendingMsg<A::Msg>) -> HwTime {
        st.procs[k.to.rank()].local_hw.max(m.send_hw + self.cfg.min_latency)
    }

    /// Clock-skew gate: would executing a step at `at` race its process
    /// too far ahead of the slowest live process?
    fn skew_ok(&self, st: &ExpState<A>, at: HwTime) -> bool {
        let Some(skew) = self.cfg.max_skew else {
            return true;
        };
        let slowest = st
            .procs
            .iter()
            .filter(|p| p.up)
            .map(|p| p.local_hw)
            .min()
            .unwrap_or(HwTime::ZERO);
        at <= slowest + skew
    }

    /// Execute one step on a state (mutating it).
    fn exec(&mut self, st: &mut ExpState<A>, step: Step) {
        self.report.transitions += 1;
        match step {
            Step::Deliver(k) => {
                let m = st.pending.remove(&k).expect("enabled deliver exists");
                let at = st.procs[k.to.rank()].local_hw.max(m.send_hw + self.cfg.min_latency);
                st.procs[k.to.rank()].local_hw = at;
                st.deliveries += 1;
                self.invoke(
                    st,
                    k.to,
                    Invoke::Message {
                        from: k.from,
                        msg: m.msg,
                    },
                );
            }
            Step::Drop(k) => {
                st.pending.remove(&k).expect("enabled drop exists");
                st.drops_left -= 1;
            }
            Step::Fire(pid, id) => {
                let p = &mut st.procs[pid.rank()];
                let (deadline, token) = p.timers.remove(&id).expect("enabled timer exists");
                p.local_hw = p.local_hw.max(deadline);
                p.timer_fires += 1;
                self.invoke(st, pid, Invoke::Timer { token });
            }
            Step::Crash(pid) => {
                let p = &mut st.procs[pid.rank()];
                p.up = false;
                p.timers.clear();
                st.crashes_left -= 1;
                // Nothing in flight can reach it any more.
                st.pending.retain(|k, _| k.to != pid);
            }
        }
    }

    /// Invoke an actor through the engine's effect interface and fold
    /// the emitted effects back into explorer state.
    fn invoke(&mut self, st: &mut ExpState<A>, pid: ProcessId, what: Invoke<A::Msg>) {
        debug_assert!(self.effects.is_empty());
        let n = st.actors.len();
        let now_hw = st.procs[pid.rank()].local_hw;
        {
            let mut ctx = Ctx::internal(
                pid,
                n,
                now_hw,
                &mut st.procs[pid.rank()].next_timer_id,
                &mut self.effects,
                &mut self.rng,
            );
            let actor = &mut st.actors[pid.rank()];
            match what {
                Invoke::Start => actor.on_start(&mut ctx),
                Invoke::Message { from, msg } => actor.on_message(&mut ctx, from, msg),
                Invoke::Timer { token } => actor.on_timer(&mut ctx, token),
            }
        }
        let effects = std::mem::take(&mut self.effects);
        for e in effects {
            match e {
                Effect::Send { to, msg } => self.route(st, pid, to, now_hw, msg),
                Effect::Broadcast { msg } => {
                    for rank in 0..n {
                        let to = ProcessId(rank as u16);
                        if to != pid {
                            self.route(st, pid, to, now_hw, msg.clone());
                        }
                    }
                }
                Effect::Timer {
                    id,
                    after_hw,
                    token,
                } => {
                    st.procs[pid.rank()]
                        .timers
                        .insert(id, (now_hw + after_hw, token));
                }
                Effect::CancelTimer(id) => {
                    // Not pending ⇒ it already fired; cancel is a no-op,
                    // exactly like the engine.
                    st.procs[pid.rank()].timers.remove(&id);
                }
                Effect::Trace(_) => {}
            }
        }
    }

    fn route(&mut self, st: &mut ExpState<A>, from: ProcessId, to: ProcessId, at: HwTime, msg: A::Msg) {
        if !st.procs[to.rank()].up {
            return; // sends to crashed processes vanish, like the engine
        }
        let seq = st.next_msg_seq[from.rank()];
        st.next_msg_seq[from.rank()] = seq + 1;
        st.pending.insert(
            MsgKey { to, from, seq },
            PendingMsg { msg, send_hw: at },
        );
    }

    // ---- search --------------------------------------------------------

    /// Sleep-set DFS. `sleep` holds steps whose exploration from this
    /// state would only reproduce schedules already covered elsewhere.
    fn dfs(&mut self, st: &ExpState<A>, sleep: BTreeSet<Step>) {
        if self.done {
            return;
        }
        let enabled = self.enabled(st);
        let explorable: Vec<Step> = if self.cfg.dpor {
            enabled.iter().copied().filter(|s| !sleep.contains(s)).collect()
        } else {
            enabled.clone()
        };
        if self.cfg.dpor {
            self.report.sleep_pruned += (enabled.len() - explorable.len()) as u64;
        }
        if explorable.is_empty() {
            // Terminal (a state whose every enabled step is asleep is
            // fully covered by sibling subtrees — not a new schedule).
            if enabled.is_empty() {
                self.terminal(st);
            }
            return;
        }
        let mut done: BTreeSet<Step> = BTreeSet::new();
        for step in explorable {
            if self.done {
                return;
            }
            let mut child = st.clone();
            self.exec(&mut child, step);
            self.schedule.push(step);
            let child_sleep: BTreeSet<Step> = if self.cfg.dpor {
                sleep
                    .iter()
                    .chain(done.iter())
                    .copied()
                    .filter(|&u| step.independent(u))
                    .collect()
            } else {
                BTreeSet::new()
            };
            self.dfs(&child, child_sleep);
            self.schedule.pop();
            done.insert(step);
        }
    }

    fn terminal(&mut self, st: &ExpState<A>) {
        self.report.schedules += 1;
        let violations = (self.check)(&st.actors);
        if !violations.is_empty() {
            self.report.violations.push(ScheduleViolation {
                schedule: self.schedule.clone(),
                violations,
            });
            if self.cfg.max_violations > 0
                && self.report.violations.len() >= self.cfg.max_violations
            {
                self.done = true;
            }
        }
        if self.report.schedules >= self.cfg.max_schedules {
            self.report.truncated = true;
            self.done = true;
        }
    }
}

fn earliest_timer(p: &ProcState) -> Option<(TimerId, HwTime)> {
    p.timers
        .iter()
        .map(|(id, (deadline, _))| (*id, *deadline))
        .min_by_key(|&(id, deadline)| (deadline, id))
}

enum Invoke<M> {
    Start,
    Message { from: ProcessId, msg: M },
    Timer { token: u64 },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Payload;

    /// Counts everything it sees; broadcasts one ping on start from p0,
    /// echoes pongs, and rearms a timer up to the budget.
    #[derive(Clone, Default)]
    struct Echo {
        got: Vec<(ProcessId, &'static str)>,
        fired: u32,
    }

    #[derive(Clone)]
    struct M(&'static str);

    impl Payload for M {
        fn kind_label(&self) -> &'static str {
            self.0
        }
    }

    impl Actor for Echo {
        type Msg = M;

        fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
            if ctx.pid() == ProcessId(0) {
                ctx.broadcast(M("ping"));
            }
            ctx.set_timer(Duration::from_millis(10), 1);
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: ProcessId, msg: M) {
            self.got.push((from, msg.0));
            if msg.0 == "ping" {
                ctx.send(from, M("pong"));
            }
        }

        fn on_timer(&mut self, _ctx: &mut Ctx<'_, M>, _token: u64) {
            self.fired += 1;
        }
    }

    fn cfg() -> ExploreConfig {
        ExploreConfig {
            max_deliveries: 8,
            max_timer_fires_per_proc: 1,
            max_schedules: 1_000_000,
            ..ExploreConfig::default()
        }
    }

    #[test]
    fn explores_all_schedules_without_violations() {
        let rep = Explorer::new(cfg(), |_: &[Echo]| Vec::new())
            .run(vec![Echo::default(); 3]);
        assert!(rep.clean());
        assert!(rep.schedules > 1, "expected branching, got {}", rep.schedules);
        assert!(!rep.truncated);
    }

    #[test]
    fn checker_violations_carry_schedules() {
        // Flag any terminal state where p1 saw a ping — always true once
        // delivered, so violations must be found, each with a schedule.
        let rep = Explorer::new(cfg(), |actors: &[Echo]| {
            if actors[1].got.iter().any(|(_, k)| *k == "ping") {
                vec!["p1 saw ping".to_string()]
            } else {
                Vec::new()
            }
        })
        .run(vec![Echo::default(); 2]);
        assert!(!rep.clean());
        let v = &rep.violations[0];
        assert!(!v.schedule.is_empty());
        assert!(v
            .schedule
            .iter()
            .any(|s| matches!(s, Step::Deliver(k) if k.to == ProcessId(1))));
    }

    #[test]
    fn dpor_agrees_with_full_enumeration_on_verdicts() {
        let run = |dpor: bool, crash: usize| {
            let c = ExploreConfig {
                dpor,
                crash_budget: crash,
                ..cfg()
            };
            Explorer::new(c, |actors: &[Echo]| {
                // "Violation": some live process never got any message
                // although every delivery happened (vacuous enough to
                // trigger in some schedules, not others).
                if actors.iter().all(|a| a.got.is_empty()) {
                    vec!["nobody got anything".into()]
                } else {
                    Vec::new()
                }
            })
            .run(vec![Echo::default(); 3])
        };
        for crash in [0usize, 1] {
            let full = run(false, crash);
            let dpor = run(true, crash);
            assert_eq!(full.clean(), dpor.clean(), "crash={crash}");
            assert!(
                dpor.schedules <= full.schedules,
                "reduction should not grow the space"
            );
            assert!(dpor.schedules > 0);
        }
    }

    #[test]
    fn crash_budget_explores_crash_placements() {
        let c = ExploreConfig {
            crash_budget: 1,
            ..cfg()
        };
        let rep = Explorer::new(c, |_: &[Echo]| Vec::new()).run(vec![Echo::default(); 2]);
        assert!(rep.clean());
        // With a crash budget the space is strictly larger than without.
        let rep0 = Explorer::new(cfg(), |_: &[Echo]| Vec::new()).run(vec![Echo::default(); 2]);
        assert!(rep.schedules > rep0.schedules);
    }

    #[test]
    fn drop_budget_enables_omission_faults() {
        let c = ExploreConfig {
            drop_budget: 1,
            ..cfg()
        };
        // A schedule must exist where p1 never sees the ping.
        let rep = Explorer::new(c, |actors: &[Echo]| {
            if actors[1].got.is_empty() {
                vec!["ping omitted".into()]
            } else {
                Vec::new()
            }
        })
        .run(vec![Echo::default(); 2]);
        assert!(!rep.clean());
        assert!(rep
            .violations
            .iter()
            .any(|v| v.schedule.iter().any(|s| matches!(s, Step::Drop(_)))));
    }

    #[test]
    fn deliveries_respect_min_latency_timestamps() {
        // After any complete schedule, every recipient clock is at least
        // min_latency past zero if it received anything.
        let rep = Explorer::new(cfg(), |_: &[Echo]| Vec::new()).run(vec![Echo::default(); 2]);
        assert!(rep.clean());
        assert!(rep.transitions > 0);
    }
}
