//! Drifting hardware clocks.
//!
//! Each process owns a [`HardwareClock`]: monotone, never adjusted, with a
//! constant drift rate bounded by ρ and an arbitrary initial offset —
//! exactly the paper's §2 assumption ("the deviation between two correct
//! hardware clocks can be arbitrarily large", drift of order 1e-4…1e-6).
//! Clocks have crash failure semantics: they are correct until the process
//! crashes.

// tw-lint: allow-file(float-state) -- the drift *rate* is part of the simulated
// environment, not protocol state; readings are rounded to integral micros and
// the same seed reproduces them bit-for-bit on any platform with IEEE-754 f64.

use crate::time::SimTime;
use tw_proto::{Duration, HwTime};

/// Static description of one process's hardware clock.
#[derive(Debug, Clone, Copy)]
pub struct ClockConfig {
    /// Constant drift rate (e.g. `80e-6` = 80 ppm fast, negative = slow).
    /// |drift| must stay below the model bound ρ chosen by the protocol
    /// configuration.
    pub drift: f64,
    /// Initial reading at simulation start (clocks are unsynchronized, so
    /// this can be anything).
    pub offset: HwTime,
}

impl Default for ClockConfig {
    fn default() -> Self {
        ClockConfig {
            drift: 0.0,
            offset: HwTime::ZERO,
        }
    }
}

impl ClockConfig {
    /// A clock with the given ppm drift and zero offset.
    pub fn with_drift_ppm(ppm: f64) -> Self {
        ClockConfig {
            drift: ppm * 1e-6,
            offset: HwTime::ZERO,
        }
    }
}

/// A running hardware clock: maps simulated real time to this process's
/// hardware time.
#[derive(Debug, Clone, Copy)]
pub struct HardwareClock {
    cfg: ClockConfig,
}

impl HardwareClock {
    /// Build a clock from its configuration.
    pub fn new(cfg: ClockConfig) -> Self {
        HardwareClock { cfg }
    }

    /// The configured drift rate.
    #[inline]
    pub fn drift(&self) -> f64 {
        self.cfg.drift
    }

    /// Read the clock at real time `now`:
    /// `H(t) = offset + (1 + drift) · t`.
    pub fn read(&self, now: SimTime) -> HwTime {
        let scaled = (now.as_micros() as f64 * (1.0 + self.cfg.drift)).round() as i64;
        HwTime(self.cfg.offset.0 + scaled)
    }

    /// Convert a *hardware* duration into the real duration it takes this
    /// clock to advance by it (used to schedule timers specified in
    /// hardware time).
    pub fn hw_to_real(&self, d: Duration) -> Duration {
        Duration((d.as_micros() as f64 / (1.0 + self.cfg.drift)).round() as i64)
    }

    /// Convert a real duration into how much this clock advances over it.
    pub fn real_to_hw(&self, d: Duration) -> Duration {
        Duration((d.as_micros() as f64 * (1.0 + self.cfg.drift)).round() as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_drift_tracks_real_time() {
        let c = HardwareClock::new(ClockConfig::default());
        assert_eq!(c.read(SimTime::from_millis(5)), HwTime::from_millis(5));
    }

    #[test]
    fn offset_applies() {
        let c = HardwareClock::new(ClockConfig {
            drift: 0.0,
            offset: HwTime::from_millis(100),
        });
        assert_eq!(c.read(SimTime::from_millis(5)), HwTime::from_millis(105));
    }

    #[test]
    fn drift_accumulates() {
        // 100 ppm fast: over 10 s the clock gains 1 ms.
        let c = HardwareClock::new(ClockConfig::with_drift_ppm(100.0));
        let hw = c.read(SimTime::from_secs(10));
        assert_eq!(hw, HwTime::from_micros(10_000_000 + 1_000));
    }

    #[test]
    fn negative_drift_lags() {
        let c = HardwareClock::new(ClockConfig::with_drift_ppm(-100.0));
        let hw = c.read(SimTime::from_secs(10));
        assert_eq!(hw, HwTime::from_micros(10_000_000 - 1_000));
    }

    #[test]
    fn hw_real_conversions_inverse() {
        let c = HardwareClock::new(ClockConfig::with_drift_ppm(200.0));
        let d = Duration::from_secs(5);
        let real = c.hw_to_real(d);
        let back = c.real_to_hw(real);
        assert!((back.as_micros() - d.as_micros()).abs() <= 1);
    }

    #[test]
    fn monotone() {
        let c = HardwareClock::new(ClockConfig::with_drift_ppm(-300.0));
        let mut prev = c.read(SimTime::ZERO);
        for i in 1..100 {
            let cur = c.read(SimTime::from_millis(i));
            assert!(cur > prev);
            prev = cur;
        }
    }
}
