//! The discrete-event engine: world, processes, actors and effects.
//!
//! Processes are [`Actor`]s — pure state machines invoked with messages
//! and timer expirations, emitting effects (send, broadcast, set-timer,
//! trace) through a [`Ctx`]. The [`World`] owns the event queue, the
//! network model, fault injection and the stats ledger, and guarantees
//! **bit-for-bit determinism** for a given seed: events are totally
//! ordered by `(time, insertion-seq)` and all randomness flows from one
//! seeded generator consumed in event order.

use crate::clock::{ClockConfig, HardwareClock};
use crate::fault::{Fault, FaultAction};
use crate::link::{Fate, LinkModel};
use crate::stats::Stats;
use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BTreeSet, BinaryHeap};
use tw_proto::{Duration, HwTime, Msg, ProcessId};

/// Message payloads the engine can account for.
pub trait Payload: Clone {
    /// A static label for the stats ledger ("decision", "join", …).
    fn kind_label(&self) -> &'static str;
}

impl Payload for Msg {
    fn kind_label(&self) -> &'static str {
        self.kind().as_str()
    }
}

/// A simulated process body.
///
/// Implementations must be deterministic: any randomness must come from
/// [`Ctx::rng`], any time from [`Ctx::now_hw`]. The engine never exposes
/// real simulated time to actors — processes in a timed asynchronous
/// system only ever see their own hardware clock.
pub trait Actor: Sized {
    /// The message type exchanged between processes.
    type Msg: Payload;

    /// Called once when the process starts at simulation time zero.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// Called for every delivered datagram.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: ProcessId, msg: Self::Msg);

    /// Called when a timer set via [`Ctx::set_timer`] expires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg>, token: u64);

    /// Called when the process recovers from a crash (default: behave
    /// like a fresh start). Implementations should reset volatile state
    /// and bump their incarnation.
    fn on_recover(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        self.on_start(ctx);
    }
}

/// Whether a process is currently running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessStatus {
    /// Running normally.
    Up,
    /// Crashed: receives nothing, timers cancelled, sends impossible.
    Crashed,
}

/// Handle for a pending timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(pub u64);

/// The effect interface an actor sees while handling one event.
pub struct Ctx<'a, M> {
    pid: ProcessId,
    n: usize,
    now_hw: HwTime,
    next_timer_id: &'a mut u64,
    effects: &'a mut Vec<Effect<M>>,
    rng: &'a mut StdRng,
}

impl<'a, M> Ctx<'a, M> {
    /// This process's id.
    #[inline]
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Team size (number of processes in the world).
    #[inline]
    pub fn team_size(&self) -> usize {
        self.n
    }

    /// This process's hardware clock reading for the current event.
    #[inline]
    pub fn now_hw(&self) -> HwTime {
        self.now_hw
    }

    /// Send a datagram to one process (may be self).
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.effects.push(Effect::Send { to, msg });
    }

    /// Broadcast a datagram to every *other* process (UDP-broadcast
    /// style: the sender does not receive its own broadcast).
    pub fn broadcast(&mut self, msg: M) {
        self.effects.push(Effect::Broadcast { msg });
    }

    /// Arm a one-shot timer that fires after `after_hw` *hardware* time.
    /// The returned id can cancel it.
    pub fn set_timer(&mut self, after_hw: Duration, token: u64) -> TimerId {
        let id = TimerId(*self.next_timer_id);
        *self.next_timer_id += 1;
        self.effects.push(Effect::Timer {
            id,
            after_hw,
            token,
        });
        id
    }

    /// Cancel a pending timer (no-op if it already fired).
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer(id));
    }

    /// Emit a trace line (recorded with real time and pid when tracing is
    /// enabled).
    pub fn trace(&mut self, text: impl Into<String>) {
        self.effects.push(Effect::Trace(text.into()));
    }

    /// Deterministic randomness for the actor.
    #[inline]
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Crate-internal constructor so sibling drivers (the [`World`] event
    /// loop and the [`crate::explore`] schedule explorer) can invoke
    /// actors through the same effect interface.
    pub(crate) fn internal(
        pid: ProcessId,
        n: usize,
        now_hw: HwTime,
        next_timer_id: &'a mut u64,
        effects: &'a mut Vec<Effect<M>>,
        rng: &'a mut StdRng,
    ) -> Self {
        Ctx {
            pid,
            n,
            now_hw,
            next_timer_id,
            effects,
            rng,
        }
    }
}

pub(crate) enum Effect<M> {
    Send {
        to: ProcessId,
        msg: M,
    },
    Broadcast {
        msg: M,
    },
    Timer {
        id: TimerId,
        after_hw: Duration,
        token: u64,
    },
    CancelTimer(TimerId),
    Trace(String),
}

/// Scheduled world mutations (the fault script).
enum ScriptKind<A: Actor> {
    Crash(ProcessId),
    Recover(ProcessId),
    Partition(Vec<BTreeSet<ProcessId>>),
    Heal,
    AddFault(Fault<A::Msg>),
    ClearFaults,
    #[allow(clippy::type_complexity)]
    Call(ProcessId, Box<dyn FnOnce(&mut A, &mut Ctx<'_, A::Msg>)>),
}

enum EventKind<A: Actor> {
    Start(ProcessId),
    Deliver {
        from: ProcessId,
        to: ProcessId,
        msg: A::Msg,
        late: bool,
    },
    Timer {
        pid: ProcessId,
        id: TimerId,
        token: u64,
        epoch: u32,
    },
    Script(ScriptKind<A>),
}

struct Event<A: Actor> {
    at: SimTime,
    /// Tie-break class at equal timestamps: scripts (world mutations)
    /// apply before process activity scheduled for the same instant.
    class: u8,
    seq: u64,
    kind: EventKind<A>,
}

impl<A: Actor> PartialEq for Event<A> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.class == other.class && self.seq == other.seq
    }
}
impl<A: Actor> Eq for Event<A> {}
impl<A: Actor> PartialOrd for Event<A> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl<A: Actor> Ord for Event<A> {
    // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
    // first.
    fn cmp(&self, other: &Self) -> CmpOrdering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.class.cmp(&self.class))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Process<A> {
    actor: A,
    status: ProcessStatus,
    clock: HardwareClock,
    epoch: u32,
    // Ordered set: the engine promises bit-for-bit determinism, so even
    // bookkeeping containers stay iteration-order-stable (tw-lint's
    // hash-container rule enforces this workspace-wide).
    cancelled: BTreeSet<TimerId>,
}

/// Static world parameters.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Seed for all simulation randomness.
    pub seed: u64,
    /// Network behaviour.
    pub link: LinkModel,
    /// Maximum scheduling delay σ: every actor invocation for a timer is
    /// additionally delayed by a uniform draw from `[0, sched_jitter]`,
    /// modelling OS scheduling.
    pub sched_jitter: Duration,
    /// Record `Ctx::trace` lines.
    pub trace: bool,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 0,
            link: LinkModel::default(),
            sched_jitter: Duration::ZERO,
            trace: false,
        }
    }
}

/// The simulated world: processes, network, clocks, faults and time.
pub struct World<A: Actor> {
    cfg: WorldConfig,
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Event<A>>,
    procs: Vec<Process<A>>,
    partition: Option<Vec<BTreeSet<ProcessId>>>,
    faults: Vec<Fault<A::Msg>>,
    rng: StdRng,
    stats: Stats,
    trace: Vec<(SimTime, ProcessId, String)>,
    next_timer_id: u64,
    effects: Vec<Effect<A::Msg>>,
}

impl<A: Actor> World<A> {
    /// Create an empty world.
    pub fn new(cfg: WorldConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        World {
            cfg,
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            procs: Vec::new(),
            partition: None,
            faults: Vec::new(),
            rng,
            stats: Stats::new(),
            trace: Vec::new(),
            next_timer_id: 1,
            effects: Vec::new(),
        }
    }

    /// Add a process with the given clock; its `on_start` runs at time
    /// zero. Returns its id (ranks are assigned in insertion order).
    pub fn add_process(&mut self, actor: A, clock: ClockConfig) -> ProcessId {
        let pid = ProcessId(self.procs.len() as u16);
        self.procs.push(Process {
            actor,
            status: ProcessStatus::Up,
            clock: HardwareClock::new(clock),
            epoch: 0,
            cancelled: BTreeSet::new(),
        });
        self.push_event(SimTime::ZERO, EventKind::Start(pid));
        pid
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// True when no processes were added.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Current simulated real time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Immutable access to a process's actor.
    pub fn actor(&self, p: ProcessId) -> &A {
        &self.procs[p.rank()].actor
    }

    /// Mutable access to a process's actor (for test/experiment setup
    /// outside the event loop; inside it, use [`World::call_at`]).
    pub fn actor_mut(&mut self, p: ProcessId) -> &mut A {
        &mut self.procs[p.rank()].actor
    }

    /// A process's up/crashed status.
    pub fn status(&self, p: ProcessId) -> ProcessStatus {
        self.procs[p.rank()].status
    }

    /// A process's hardware clock reading at the current time.
    pub fn hw_time(&self, p: ProcessId) -> HwTime {
        self.procs[p.rank()].clock.read(self.now)
    }

    /// The message ledger.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Reset the message ledger (to measure a steady-state window).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Recorded trace lines `(time, pid, text)`.
    pub fn trace(&self) -> &[(SimTime, ProcessId, String)] {
        &self.trace
    }

    // ---- fault script -------------------------------------------------

    /// Crash `p` at time `t`: timers are invalidated, in-flight messages
    /// to it are discarded on arrival.
    pub fn crash_at(&mut self, t: SimTime, p: ProcessId) {
        self.push_event(t, EventKind::Script(ScriptKind::Crash(p)));
    }

    /// Recover `p` at time `t` (invokes [`Actor::on_recover`]).
    pub fn recover_at(&mut self, t: SimTime, p: ProcessId) {
        self.push_event(t, EventKind::Script(ScriptKind::Recover(p)));
    }

    /// Partition the network at `t` into the given groups; messages cross
    /// group boundaries are dropped. Processes absent from all groups are
    /// isolated.
    pub fn partition_at(&mut self, t: SimTime, groups: &[&[u16]]) {
        let groups = groups
            .iter()
            .map(|g| g.iter().map(|&r| ProcessId(r)).collect())
            .collect();
        self.push_event(t, EventKind::Script(ScriptKind::Partition(groups)));
    }

    /// Remove any partition at time `t`.
    pub fn heal_at(&mut self, t: SimTime) {
        self.push_event(t, EventKind::Script(ScriptKind::Heal));
    }

    /// Install a targeted fault at time `t`.
    pub fn add_fault_at(&mut self, t: SimTime, fault: Fault<A::Msg>) {
        self.push_event(t, EventKind::Script(ScriptKind::AddFault(fault)));
    }

    /// Remove all targeted faults at time `t`.
    pub fn clear_faults_at(&mut self, t: SimTime) {
        self.push_event(t, EventKind::Script(ScriptKind::ClearFaults));
    }

    /// Invoke a closure on `p`'s actor at time `t`, with a full effect
    /// context (the way experiments inject "client" operations such as
    /// proposing an update). Skipped if `p` is crashed at `t`.
    pub fn call_at(
        &mut self,
        t: SimTime,
        p: ProcessId,
        f: impl FnOnce(&mut A, &mut Ctx<'_, A::Msg>) + 'static,
    ) {
        self.push_event(t, EventKind::Script(ScriptKind::Call(p, Box::new(f))));
    }

    // ---- run loop ------------------------------------------------------

    /// Process a single event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.heap.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        match ev.kind {
            EventKind::Start(pid) => self.invoke(pid, Invoke::Start),
            EventKind::Deliver {
                from,
                to,
                msg,
                late,
            } => {
                let kind = msg.kind_label();
                if self.procs[to.rank()].status == ProcessStatus::Crashed {
                    self.stats.record_to_crashed(kind);
                } else {
                    self.stats.record_delivered(kind, late);
                    self.invoke(to, Invoke::Message { from, msg });
                }
            }
            EventKind::Timer {
                pid,
                id,
                token,
                epoch,
            } => {
                let proc = &mut self.procs[pid.rank()];
                let stale = proc.epoch != epoch
                    || proc.status == ProcessStatus::Crashed
                    || proc.cancelled.remove(&id);
                if !stale {
                    self.invoke(pid, Invoke::Timer { token });
                }
            }
            EventKind::Script(s) => self.apply_script(s),
        }
        true
    }

    /// Run until the queue is exhausted or simulated time would pass `t`;
    /// afterwards `now() == t` (unless already later).
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(ev) = self.heap.peek() {
            if ev.at > t {
                break;
            }
            self.step();
        }
        if self.now < t {
            self.now = t;
        }
    }

    /// Run for a real-time duration from `now()`.
    pub fn run_for(&mut self, d: Duration) {
        let t = self.now + d;
        self.run_until(t);
    }

    // ---- internals ------------------------------------------------------

    fn push_event(&mut self, at: SimTime, kind: EventKind<A>) {
        let class = match kind {
            EventKind::Script(_) => 0,
            _ => 1,
        };
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Event {
            at,
            class,
            seq,
            kind,
        });
    }

    fn apply_script(&mut self, s: ScriptKind<A>) {
        match s {
            ScriptKind::Crash(p) => {
                let proc = &mut self.procs[p.rank()];
                proc.status = ProcessStatus::Crashed;
                proc.epoch += 1;
                proc.cancelled.clear();
            }
            ScriptKind::Recover(p) => {
                if self.procs[p.rank()].status == ProcessStatus::Crashed {
                    self.procs[p.rank()].status = ProcessStatus::Up;
                    self.invoke(p, Invoke::Recover);
                }
            }
            ScriptKind::Partition(groups) => self.partition = Some(groups),
            ScriptKind::Heal => self.partition = None,
            ScriptKind::AddFault(f) => self.faults.push(f),
            ScriptKind::ClearFaults => self.faults.clear(),
            ScriptKind::Call(p, f) => {
                if self.procs[p.rank()].status == ProcessStatus::Up {
                    self.invoke(p, Invoke::Call(f));
                }
            }
        }
    }

    fn invoke(&mut self, pid: ProcessId, what: Invoke<A>) {
        debug_assert!(self.effects.is_empty());
        let n = self.procs.len();
        let now_hw = self.procs[pid.rank()].clock.read(self.now);
        {
            let proc = &mut self.procs[pid.rank()];
            let mut ctx = Ctx {
                pid,
                n,
                now_hw,
                next_timer_id: &mut self.next_timer_id,
                effects: &mut self.effects,
                rng: &mut self.rng,
            };
            match what {
                Invoke::Start => proc.actor.on_start(&mut ctx),
                Invoke::Recover => proc.actor.on_recover(&mut ctx),
                Invoke::Message { from, msg } => proc.actor.on_message(&mut ctx, from, msg),
                Invoke::Timer { token } => proc.actor.on_timer(&mut ctx, token),
                Invoke::Call(f) => f(&mut proc.actor, &mut ctx),
            }
        }
        self.flush_effects(pid);
    }

    fn flush_effects(&mut self, pid: ProcessId) {
        let effects = std::mem::take(&mut self.effects);
        // Coalesced wire model alongside the per-message ledger: a
        // batching runtime packs everything one dispatch emits for a
        // given destination into a single framed datagram, so the wire
        // cost of this flush is the number of distinct destinations —
        // tracked here per rank, recorded once at the end.
        let mut wire_dest = vec![false; self.procs.len()];
        for e in effects {
            match e {
                Effect::Send { to, msg } => {
                    self.stats.record_send(msg.kind_label(), pid);
                    if to.rank() < wire_dest.len() && to != pid {
                        wire_dest[to.rank()] = true;
                    }
                    self.route(pid, to, msg);
                }
                Effect::Broadcast { msg } => {
                    self.stats.record_send(msg.kind_label(), pid);
                    for rank in 0..self.procs.len() {
                        let to = ProcessId(rank as u16);
                        if to != pid {
                            wire_dest[rank] = true;
                            self.route(pid, to, msg.clone());
                        }
                    }
                }
                Effect::Timer {
                    id,
                    after_hw,
                    token,
                } => {
                    let proc = &self.procs[pid.rank()];
                    let mut real = proc.clock.hw_to_real(after_hw);
                    if self.cfg.sched_jitter > Duration::ZERO {
                        // tw-lint: allow(float-state) -- seeded-RNG jitter draw, rounded to integral micros before queueing
                        let j: f64 = self.rng.gen();
                        // tw-lint: allow(float-state) -- same jitter computation
                        let jitter = self.cfg.sched_jitter.as_micros() as f64 * j;
                        real += Duration(jitter.round() as i64);
                    }
                    let epoch = proc.epoch;
                    let at = self.now + real.max(Duration::ZERO);
                    self.push_event(
                        at,
                        EventKind::Timer {
                            pid,
                            id,
                            token,
                            epoch,
                        },
                    );
                }
                Effect::CancelTimer(id) => {
                    self.procs[pid.rank()].cancelled.insert(id);
                }
                Effect::Trace(text) => {
                    if self.cfg.trace {
                        self.trace.push((self.now, pid, text));
                    }
                }
            }
        }
        let coalesced = wire_dest.iter().filter(|d| **d).count() as u64;
        self.stats.record_wire_flush(coalesced);
    }

    fn partition_blocks(&self, from: ProcessId, to: ProcessId) -> bool {
        match &self.partition {
            None => false,
            Some(groups) => !groups.iter().any(|g| g.contains(&from) && g.contains(&to)),
        }
    }

    fn route(&mut self, from: ProcessId, to: ProcessId, msg: A::Msg) {
        let kind = msg.kind_label();
        self.stats.record_datagram(kind);
        if self.partition_blocks(from, to) {
            self.stats.record_dropped(kind);
            return;
        }
        // Targeted faults take precedence over the stochastic link model.
        let mut injected: Option<FaultAction> = None;
        for f in &mut self.faults {
            if let Some(a) = f.apply(from, to, &msg) {
                injected = Some(a);
                break;
            }
        }
        self.faults.retain(|f| !f.exhausted());
        let (delay, late) = match injected {
            Some(FaultAction::Drop) => {
                self.stats.record_dropped(kind);
                return;
            }
            Some(FaultAction::Delay(extra)) => match self.cfg.link.draw(&mut self.rng) {
                Fate::Deliver(d) | Fate::DeliverLate(d) => (d + extra, true),
                Fate::Drop => {
                    self.stats.record_dropped(kind);
                    return;
                }
            },
            None => match self.cfg.link.draw(&mut self.rng) {
                Fate::Deliver(d) => (d, false),
                Fate::DeliverLate(d) => (d, true),
                Fate::Drop => {
                    self.stats.record_dropped(kind);
                    return;
                }
            },
        };
        let at = self.now + delay;
        self.push_event(
            at,
            EventKind::Deliver {
                from,
                to,
                msg,
                late,
            },
        );
    }
}

enum Invoke<A: Actor> {
    Start,
    Recover,
    Message {
        from: ProcessId,
        msg: A::Msg,
    },
    Timer {
        token: u64,
    },
    #[allow(clippy::type_complexity)]
    Call(Box<dyn FnOnce(&mut A, &mut Ctx<'_, A::Msg>)>),
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny ping-pong actor for engine tests.
    #[derive(Default)]
    struct Pinger {
        received: Vec<(ProcessId, &'static str, u32)>,
        timer_tokens: Vec<u64>,
        started: u32,
        recovered: u32,
    }

    #[derive(Clone)]
    struct TestMsg(&'static str, u32);

    impl Payload for TestMsg {
        fn kind_label(&self) -> &'static str {
            self.0
        }
    }

    impl Actor for Pinger {
        type Msg = TestMsg;

        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            self.started += 1;
            if ctx.pid() == ProcessId(0) {
                ctx.broadcast(TestMsg("ping", 1));
                ctx.set_timer(Duration::from_millis(10), 77);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, TestMsg>, from: ProcessId, msg: TestMsg) {
            self.received.push((from, msg.0, msg.1));
            if msg.0 == "ping" {
                ctx.send(from, TestMsg("pong", msg.1));
            }
        }

        fn on_timer(&mut self, _ctx: &mut Ctx<'_, TestMsg>, token: u64) {
            self.timer_tokens.push(token);
        }

        fn on_recover(&mut self, _ctx: &mut Ctx<'_, TestMsg>) {
            self.recovered += 1;
        }
    }

    fn world(n: usize) -> World<Pinger> {
        let mut w = World::new(WorldConfig::default());
        for _ in 0..n {
            w.add_process(Pinger::default(), ClockConfig::default());
        }
        w
    }

    #[test]
    fn broadcast_reaches_all_others() {
        let mut w = world(4);
        w.run_until(SimTime::from_millis(100));
        // p1..p3 each got one ping; p0 got three pongs.
        for r in 1..4u16 {
            let a = w.actor(ProcessId(r));
            assert_eq!(a.received.len(), 1);
            assert_eq!(a.received[0].1, "ping");
        }
        let p0 = w.actor(ProcessId(0));
        assert_eq!(p0.received.len(), 3);
        assert!(p0.received.iter().all(|(_, k, _)| *k == "pong"));
    }

    #[test]
    fn timers_fire_with_tokens() {
        let mut w = world(2);
        w.run_until(SimTime::from_millis(100));
        assert_eq!(w.actor(ProcessId(0)).timer_tokens, vec![77]);
        assert!(w.actor(ProcessId(1)).timer_tokens.is_empty());
    }

    #[test]
    fn stats_count_sends_and_datagrams() {
        let mut w = world(3);
        w.run_until(SimTime::from_millis(100));
        let ping = w.stats().kind("ping");
        assert_eq!(ping.sends, 1);
        assert_eq!(ping.datagrams, 2);
        assert_eq!(ping.delivered, 2);
        let pong = w.stats().kind("pong");
        assert_eq!(pong.sends, 2);
        assert_eq!(pong.delivered, 2);
    }

    #[test]
    fn wire_ledger_counts_coalesced_destinations() {
        let mut w = world(3);
        w.run_until(SimTime::from_millis(100));
        // Flushes that sent something: p0's start broadcast (2 dests)
        // and each pong reply (1 dest). Receive-only and timer
        // dispatches emit nothing and are not counted.
        assert_eq!(w.stats().wire_flushes(), 3);
        assert_eq!(w.stats().wire_datagrams(), 4);
    }

    #[test]
    fn wire_ledger_coalesces_send_plus_broadcast() {
        let mut w = world(3);
        // One dispatch emitting a broadcast AND a targeted send to p1:
        // the per-message ledger pays 3 datagrams, the coalesced wire
        // ledger pays one framed datagram per destination = 2.
        w.call_at(SimTime::from_millis(50), ProcessId(0), |_, ctx| {
            ctx.broadcast(TestMsg("burst", 9));
            ctx.send(ProcessId(1), TestMsg("extra", 9));
        });
        w.run_until(SimTime::from_millis(60));
        let per_msg = w.stats().kind("burst").datagrams + w.stats().kind("extra").datagrams;
        assert_eq!(per_msg, 3);
        // 2 from the start broadcast + 2 from the coalesced dispatch,
        // plus one per pong reply to the start ping.
        assert_eq!(w.stats().wire_datagrams(), 6);
        let all_datagrams: u64 = w.stats().iter().map(|(_, c)| c.datagrams).sum();
        assert!(w.stats().wire_datagrams() < all_datagrams);
    }

    #[test]
    fn crashed_process_receives_nothing() {
        let mut w = world(3);
        w.crash_at(SimTime::ZERO, ProcessId(1));
        w.run_until(SimTime::from_millis(100));
        // The crash script at t=0 runs before any delivery (~1 ms later).
        assert!(w.actor(ProcessId(1)).received.is_empty());
        assert_eq!(w.stats().kind("ping").to_crashed, 1);
    }

    #[test]
    fn recover_invokes_hook_and_reenables_delivery() {
        let mut w = world(3);
        w.crash_at(SimTime::ZERO, ProcessId(1));
        w.recover_at(SimTime::from_millis(50), ProcessId(1));
        w.call_at(SimTime::from_millis(60), ProcessId(0), |_, ctx| {
            ctx.send(ProcessId(1), TestMsg("ping", 2));
        });
        w.run_until(SimTime::from_millis(100));
        let p1 = w.actor(ProcessId(1));
        assert_eq!(p1.recovered, 1);
        assert_eq!(p1.received.len(), 1);
        assert_eq!(p1.received[0].2, 2);
    }

    #[test]
    fn crash_invalidates_pending_timers() {
        let mut w = world(2);
        // p0 sets a timer for t=10ms at start; crash it at 5ms.
        w.crash_at(SimTime::from_millis(5), ProcessId(0));
        w.recover_at(SimTime::from_millis(8), ProcessId(0));
        w.run_until(SimTime::from_millis(100));
        assert!(w.actor(ProcessId(0)).timer_tokens.is_empty());
    }

    #[test]
    fn partition_blocks_cross_group_traffic() {
        let mut w = world(4);
        w.partition_at(SimTime::ZERO, &[&[0, 1], &[2, 3]]);
        w.run_until(SimTime::from_millis(100));
        // Ping from p0 only reaches p1.
        assert_eq!(w.actor(ProcessId(1)).received.len(), 1);
        assert!(w.actor(ProcessId(2)).received.is_empty());
        assert!(w.actor(ProcessId(3)).received.is_empty());
        assert_eq!(w.stats().kind("ping").dropped, 2);
    }

    #[test]
    fn heal_restores_traffic() {
        let mut w = world(2);
        w.partition_at(SimTime::ZERO, &[&[0], &[1]]);
        w.heal_at(SimTime::from_millis(20));
        w.call_at(SimTime::from_millis(30), ProcessId(0), |_, ctx| {
            ctx.send(ProcessId(1), TestMsg("ping", 9));
        });
        w.run_until(SimTime::from_millis(100));
        assert_eq!(w.actor(ProcessId(1)).received.len(), 1);
    }

    #[test]
    fn targeted_drop_fault() {
        use crate::fault::MsgMatcher;
        let mut w = world(3);
        w.add_fault_at(
            SimTime::ZERO,
            Fault::drop_next(MsgMatcher::any().to(ProcessId(1)), 1),
        );
        w.run_until(SimTime::from_millis(100));
        assert!(w.actor(ProcessId(1)).received.is_empty());
        assert_eq!(w.actor(ProcessId(2)).received.len(), 1);
    }

    #[test]
    fn targeted_delay_fault_marks_late() {
        use crate::fault::MsgMatcher;
        let mut w = world(2);
        w.add_fault_at(
            SimTime::ZERO,
            Fault::delay_next(MsgMatcher::any(), 1, Duration::from_millis(40)),
        );
        w.run_until(SimTime::from_millis(100));
        assert_eq!(w.stats().kind("ping").late, 1);
        assert_eq!(w.actor(ProcessId(1)).received.len(), 1);
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed: u64| {
            let mut w = World::new(WorldConfig {
                seed,
                link: LinkModel::default().with_drop_prob(0.2),
                ..WorldConfig::default()
            });
            for _ in 0..5 {
                w.add_process(Pinger::default(), ClockConfig::default());
            }
            w.run_until(SimTime::from_millis(200));
            (
                w.stats().kind("ping").delivered,
                w.stats().kind("pong").delivered,
            )
        };
        assert_eq!(run(11), run(11));
        // And a different seed gives (very likely) different drops — not
        // asserted strictly, but compute it to ensure no panic.
        let _ = run(12);
    }

    #[test]
    fn run_until_advances_time_even_when_idle() {
        let mut w = world(1);
        w.run_until(SimTime::from_secs(5));
        assert_eq!(w.now(), SimTime::from_secs(5));
    }

    #[test]
    fn call_at_skipped_for_crashed_process() {
        let mut w = world(2);
        w.crash_at(SimTime::from_millis(10), ProcessId(0));
        w.call_at(SimTime::from_millis(20), ProcessId(0), |_, ctx| {
            ctx.broadcast(TestMsg("ping", 3));
        });
        w.run_until(SimTime::from_millis(100));
        // Only the start-time ping arrived at p1, not the scripted one.
        assert_eq!(w.actor(ProcessId(1)).received.len(), 1);
    }

    #[test]
    fn hw_clocks_drift_apart() {
        let mut w: World<Pinger> = World::new(WorldConfig::default());
        w.add_process(Pinger::default(), ClockConfig::with_drift_ppm(100.0));
        w.add_process(Pinger::default(), ClockConfig::with_drift_ppm(-100.0));
        w.run_until(SimTime::from_secs(10));
        let h0 = w.hw_time(ProcessId(0));
        let h1 = w.hw_time(ProcessId(1));
        assert_eq!((h0 - h1).as_micros(), 2_000);
    }
}
