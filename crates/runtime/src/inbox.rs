//! Bounded node inboxes with shed-on-overflow delivery.
//!
//! The protocol assumes an unreliable datagram service, and the inbox
//! leans on that: when a node cannot keep up, excess datagrams are
//! *shed* — counted, never queued unboundedly, never blocking the
//! sender. [`InboxSender::deliver`] is called from transport receiver
//! threads and from other nodes' executor threads, so its no-block
//! guarantee is what keeps one slow node from stalling its peers (the
//! Lifeguard failure mode the chaos harness exists to provoke).
//!
//! Like [`crate::status`], this module compiles under loom
//! (`RUSTFLAGS="--cfg loom"`): the real build delivers into a crossbeam
//! bounded channel, the loom build into a loom-modeled bounded queue
//! with the same `try_send` semantics, so `tests/loom.rs` can
//! exhaustively check the deliver/shed/close race: every datagram is
//! either delivered or counted shed — none vanish — and delivery after
//! the receiver is gone reports [`Deliver::Closed`].

#[cfg(not(loom))]
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use tw_obs::Counter;
use tw_proto::{Msg, ProcessId};

/// What lands in a node's inbox.
#[derive(Debug, Clone)]
pub enum Incoming {
    /// A single-message datagram from another node.
    Msg(ProcessId, Msg),
    /// A coalesced multi-message datagram from another node; the
    /// messages are applied in order by one dispatch.
    Batch(ProcessId, Vec<Msg>),
}

/// What became of a datagram handed to an inbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deliver {
    /// Queued for the node.
    Delivered,
    /// Inbox full — shed (an omission; counted when a counter is
    /// attached).
    Shed,
    /// The node is gone; datagrams to crashed processes vanish.
    Closed,
}

/// The sending half of a node inbox: a channel plus the shed counter.
/// Never blocks — a full inbox sheds the datagram, which the protocol
/// treats exactly like network loss.
#[derive(Clone)]
pub struct InboxSender {
    tx: Sender<Incoming>,
    dropped: Option<Counter>,
}

impl InboxSender {
    /// Wrap a channel sender; `dropped` counts shed datagrams.
    pub fn new(tx: Sender<Incoming>, dropped: Option<Counter>) -> Self {
        InboxSender { tx, dropped }
    }

    /// Offer one datagram to the node.
    pub fn deliver(&self, inc: Incoming) -> Deliver {
        match self.tx.try_send(inc) {
            Ok(()) => Deliver::Delivered,
            Err(TrySendError::Full(_)) => {
                if let Some(c) = &self.dropped {
                    c.inc();
                }
                Deliver::Shed
            }
            Err(TrySendError::Disconnected(_)) => Deliver::Closed,
        }
    }
}

#[cfg(not(loom))]
impl From<Sender<Incoming>> for InboxSender {
    fn from(tx: Sender<Incoming>) -> Self {
        InboxSender::new(tx, None)
    }
}

/// Build a bounded node inbox that sheds on overflow; `dropped` is
/// bumped per shed datagram (wire it to `tw_inbox_dropped_total`).
pub fn node_inbox(capacity: usize, dropped: Option<Counter>) -> (InboxSender, Receiver<Incoming>) {
    let (tx, rx) = bounded(capacity.max(1));
    (InboxSender::new(tx, dropped), rx)
}

/// Loom stand-in for the crossbeam bounded channel: a mutex-guarded
/// ring with an atomic closed flag, exposing the same `try_send`
/// contract (`Full` when at capacity, `Disconnected` once the receiver
/// dropped) so [`InboxSender::deliver`] above compiles unchanged
/// against it. Only the operations `deliver` exercises are modeled.
#[cfg(loom)]
mod loom_chan {
    use loom::sync::atomic::{AtomicBool, Ordering};
    use loom::sync::{Arc, Mutex};
    use std::collections::VecDeque;

    pub struct Shared<T> {
        buf: Mutex<VecDeque<T>>,
        cap: usize,
        closed: AtomicBool,
    }

    pub struct Sender<T>(Arc<Shared<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Same shape as `crossbeam::channel::TrySendError`.
    pub enum TrySendError<T> {
        /// At capacity; the datagram comes back to the caller.
        Full(T),
        /// The receiving side is gone.
        Disconnected(T),
    }

    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            buf: Mutex::new(VecDeque::new()),
            cap,
            closed: AtomicBool::new(false),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    impl<T> Sender<T> {
        pub fn try_send(&self, v: T) -> Result<(), TrySendError<T>> {
            if self.0.closed.load(Ordering::Acquire) {
                return Err(TrySendError::Disconnected(v));
            }
            let mut buf = self.0.buf.lock().unwrap();
            if buf.len() >= self.0.cap {
                return Err(TrySendError::Full(v));
            }
            buf.push_back(v);
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Drain one queued item (the loom tests' dispatch stand-in).
        pub fn try_recv(&self) -> Option<T> {
            self.0.buf.lock().unwrap().pop_front()
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.closed.store(true, Ordering::Release);
        }
    }
}

#[cfg(loom)]
use loom_chan::{bounded, Receiver, Sender, TrySendError};

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use tw_proto::{ClockSyncMsg, HwTime};

    fn msg(n: u16) -> Incoming {
        Incoming::Msg(
            ProcessId(n),
            Msg::ClockSync(ClockSyncMsg::Request {
                sender: ProcessId(n),
                rid: n as u64,
                hw_send: HwTime(1),
            }),
        )
    }

    #[test]
    fn delivers_until_capacity_then_sheds_and_counts() {
        let shed = Counter::default();
        let (tx, rx) = node_inbox(2, Some(shed.clone()));
        assert_eq!(tx.deliver(msg(1)), Deliver::Delivered);
        assert_eq!(tx.deliver(msg(2)), Deliver::Delivered);
        assert_eq!(tx.deliver(msg(3)), Deliver::Shed);
        assert_eq!(shed.get(), 1);
        // Draining makes room again.
        let _ = rx.try_recv().unwrap();
        assert_eq!(tx.deliver(msg(4)), Deliver::Delivered);
        assert_eq!(shed.get(), 1);
    }

    #[test]
    fn delivery_after_receiver_drop_reports_closed() {
        let shed = Counter::default();
        let (tx, rx) = node_inbox(2, Some(shed.clone()));
        drop(rx);
        assert_eq!(tx.deliver(msg(1)), Deliver::Closed);
        // Closed is not shed: the node is gone, not overloaded.
        assert_eq!(shed.get(), 0);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let (tx, _rx) = node_inbox(0, None);
        assert_eq!(tx.deliver(msg(1)), Deliver::Delivered);
        assert_eq!(tx.deliver(msg(2)), Deliver::Shed);
    }
}
