//! The event-based executor (paper §5).
//!
//! One thread per process runs a single event-demultiplexing loop:
//! network datagrams, client commands and the two protocol timers are all
//! dispatched from the same place, one handler at a time. No locking, no
//! inter-thread scheduling — the design the paper adopted after finding
//! the thread-based version's overhead "significant".
//!
//! Every dispatch (handler entry through actions applied) is timed into
//! the node's `dispatch_latency_us` histogram, making the §5 latency
//! argument measurable: compare this distribution against the
//! thread-based executor's lock-and-switch overhead.

use crate::node::{apply_actions, NodeCommand, NodeOutput, NodeParts};
use crate::transport::Incoming;
use std::time::Duration as StdDuration;
use std::time::Instant;

pub(crate) fn run(parts: NodeParts) {
    let NodeParts {
        mut member,
        inbox,
        cmds,
        out,
        transport,
        clock,
        mut hook,
        metrics,
        recorder,
        gate,
        status,
    } = parts;
    // Held on this stack so the flight recorder's tail is spilled even
    // if a handler panics and unwinds this thread (the Node's own Arc
    // keeps the recorder alive, so Drop alone would not fire here).
    let _recorder_guard = tw_obs::FlushGuard::new(recorder);
    let pid = member.pid();
    let tick = member.config().tick;
    let resync = member.config().clock.resync_interval;

    let now = clock.now_hw();
    let mut next_clock = now + resync;
    let actions = member.on_start(now);
    let (t, snap) = apply_actions(pid, actions, &*transport, &out, now, &mut hook, &metrics);
    if let Some(t) = t {
        next_clock = t;
    }
    if let Some(s) = snap {
        member.set_app_snapshot(s);
    }
    let mut next_tick = now + tick;

    loop {
        // Chaos pause: freeze before the next dispatch, faking a
        // process that stopped making progress (performance failure).
        gate.block_while_paused();

        let now = clock.now_hw();
        let deadline = next_tick.min(next_clock);
        let wait_us = (deadline - now).as_micros().max(0) as u64;

        crossbeam::channel::select! {
            recv(inbox) -> m => match m {
                Ok(Incoming::Msg(from, msg)) => {
                    let started = Instant::now();
                    let now = clock.now_hw();
                    let actions = member.on_message(now, from, msg);
                    let (t, snap) =
                        apply_actions(pid, actions, &*transport, &out, now, &mut hook, &metrics);
                    metrics.on_dispatch(started);
                    if let Some(t) = t {
                        next_clock = t;
                    }
                    if let Some(s) = snap {
                        member.set_app_snapshot(s);
                    }
                }
                Err(_) => break, // transport gone
            },
            recv(cmds) -> c => match c {
                Ok(NodeCommand::Propose(payload, sem)) => {
                    let started = Instant::now();
                    let now = clock.now_hw();
                    match member.propose(now, payload, sem) {
                        Ok(actions) => {
                            let (t, snap) =
                                apply_actions(pid, actions, &*transport, &out, now, &mut hook, &metrics);
                            metrics.on_dispatch(started);
                            if let Some(t) = t {
                                next_clock = t;
                            }
                            if let Some(s) = snap {
                                member.set_app_snapshot(s);
                            }
                        }
                        Err(e) => {
                            let _ = out.send(NodeOutput::ProposeRejected(e));
                        }
                    }
                }
                Ok(NodeCommand::Shutdown) | Err(_) => break,
            },
            default(StdDuration::from_micros(wait_us)) => {}
        }

        let now = clock.now_hw();
        if now >= next_tick {
            let started = Instant::now();
            let actions = member.on_tick(now);
            let (t, snap) =
                apply_actions(pid, actions, &*transport, &out, now, &mut hook, &metrics);
            metrics.on_dispatch(started);
            if let Some(t) = t {
                next_clock = t;
            }
            if let Some(s) = snap {
                member.set_app_snapshot(s);
            }
            next_tick = now + tick;
        }
        if now >= next_clock {
            let started = Instant::now();
            let actions = member.on_clock_tick(now);
            let (t, _) = apply_actions(pid, actions, &*transport, &out, now, &mut hook, &metrics);
            metrics.on_dispatch(started);
            match t {
                Some(t) => next_clock = t,
                None => next_clock = now + resync,
            }
        }

        // Publish the member's locally observed status (§6
        // fail-awareness) for harness-side checks.
        let now = clock.now_hw();
        status.publish(crate::chaos::NodeStatus {
            up_to_date: member.is_up_to_date(now),
            view_len: member.view().len(),
            view_seq: member.view().id.seq,
        });
    }
}
