//! The event-based executor (paper §5).
//!
//! One thread per process runs a single event-demultiplexing loop:
//! network datagrams, client commands and the two protocol timers are all
//! dispatched from the same place, one handler at a time. No locking, no
//! inter-thread scheduling — the design the paper adopted after finding
//! the thread-based version's overhead "significant".
//!
//! Hot-path batching happens here: a coalesced datagram's messages are
//! applied in one `on_messages` dispatch, a burst of queued propose
//! commands drains into one `propose_batch` call, and every dispatch's
//! outbound traffic leaves through one [`OutBatch`] flush (one datagram
//! per destination, one vectored syscall on Linux).
//!
//! Every dispatch (handler entry through actions applied) is timed into
//! the node's `dispatch_latency_us` histogram, making the §5 latency
//! argument measurable: compare this distribution against the
//! thread-based executor's lock-and-switch overhead.

use crate::node::{apply_actions, NodeCommand, NodeOutput, NodeParts};
use crate::transport::{Incoming, OutBatch};
use bytes::Bytes;
use std::time::Duration as StdDuration;
use std::time::Instant;
use tw_proto::Semantics;

/// Most propose commands drained into one batch (bounds the latency a
/// later proposer can add to an earlier one's broadcast).
const MAX_PROPOSE_DRAIN: usize = 256;

pub(crate) fn run(parts: NodeParts) {
    let NodeParts {
        mut member,
        inbox,
        cmds,
        out,
        transport,
        clock,
        mut hook,
        metrics,
        recorder,
        gate,
        status,
    } = parts;
    // Held on this stack so the flight recorder's tail is spilled even
    // if a handler panics and unwinds this thread (the Node's own Arc
    // keeps the recorder alive, so Drop alone would not fire here).
    let recorder_watch = recorder.clone();
    let _recorder_guard = tw_obs::FlushGuard::new(recorder);
    let inbox_depth = metrics.inbox_depth();
    let recorder_buffered = metrics.recorder_buffered();
    let pid = member.pid();
    let tick = member.config().tick;
    let resync = member.config().clock.resync_interval;
    // The executor's long-lived outbound batch: reused across
    // dispatches so encoder scratch amortizes to zero allocations.
    let mut batch = OutBatch::new();

    let now = clock.now_hw();
    let mut next_clock = now + resync;
    let actions = member.on_start(now);
    let (t, snap) = apply_actions(
        pid, actions, &*transport, &out, now, &mut hook, &metrics, &mut batch,
    );
    if let Some(t) = t {
        next_clock = t;
    }
    if let Some(s) = snap {
        member.set_app_snapshot(s);
    }
    let mut next_tick = now + tick;
    let mut shutdown = false;

    while !shutdown {
        // Chaos pause: freeze before the next dispatch, faking a
        // process that stopped making progress (performance failure).
        gate.block_while_paused();

        let now = clock.now_hw();
        let deadline = next_tick.min(next_clock);
        let wait_us = (deadline - now).as_micros().max(0) as u64;

        crossbeam::channel::select! {
            recv(inbox) -> m => match m {
                Ok(inc) => {
                    let started = Instant::now();
                    let now = clock.now_hw();
                    let actions = match inc {
                        Incoming::Msg(from, msg) => member.on_message(now, from, msg),
                        // One coalesced datagram → one dispatch.
                        Incoming::Batch(from, msgs) => member.on_messages(now, from, msgs),
                    };
                    let (t, snap) = apply_actions(
                        pid, actions, &*transport, &out, now, &mut hook, &metrics, &mut batch,
                    );
                    metrics.on_dispatch(started);
                    if let Some(t) = t {
                        next_clock = t;
                    }
                    if let Some(s) = snap {
                        member.set_app_snapshot(s);
                    }
                }
                Err(_) => break, // transport gone
            },
            recv(cmds) -> c => match c {
                Ok(NodeCommand::Propose(payload, sem)) => {
                    let started = Instant::now();
                    let now = clock.now_hw();
                    // Drain whatever else the client already queued into
                    // the same batch: under load, many updates share one
                    // dispatch and one multi-frame datagram; an idle
                    // queue degenerates to the classic single propose
                    // with no added latency.
                    let mut updates: Vec<(Bytes, Semantics)> = vec![(payload, sem)];
                    while updates.len() < MAX_PROPOSE_DRAIN {
                        match cmds.try_recv() {
                            Ok(NodeCommand::Propose(p, s)) => updates.push((p, s)),
                            Ok(NodeCommand::Shutdown) => {
                                shutdown = true;
                                break;
                            }
                            Err(_) => break,
                        }
                    }
                    match member.propose_batch(now, updates) {
                        Ok(actions) => {
                            let (t, snap) = apply_actions(
                                pid, actions, &*transport, &out, now, &mut hook, &metrics,
                                &mut batch,
                            );
                            metrics.on_dispatch(started);
                            if let Some(t) = t {
                                next_clock = t;
                            }
                            if let Some(s) = snap {
                                member.set_app_snapshot(s);
                            }
                        }
                        Err(e) => {
                            let _ = out.send(NodeOutput::ProposeRejected(e));
                        }
                    }
                }
                Ok(NodeCommand::Shutdown) | Err(_) => break,
            },
            default(StdDuration::from_micros(wait_us)) => {}
        }

        let now = clock.now_hw();
        if now >= next_tick {
            metrics.on_tick_lag((now - next_tick).as_micros().max(0) as u64);
            let started = Instant::now();
            let actions = member.on_tick(now);
            let (t, snap) = apply_actions(
                pid, actions, &*transport, &out, now, &mut hook, &metrics, &mut batch,
            );
            metrics.on_dispatch(started);
            if let Some(t) = t {
                next_clock = t;
            }
            if let Some(s) = snap {
                member.set_app_snapshot(s);
            }
            next_tick = now + tick;
        }
        if now >= next_clock {
            metrics.on_deadline_overrun((now - next_clock).as_micros().max(0) as u64);
            let started = Instant::now();
            let actions = member.on_clock_tick(now);
            let (t, _) = apply_actions(
                pid, actions, &*transport, &out, now, &mut hook, &metrics, &mut batch,
            );
            metrics.on_dispatch(started);
            match t {
                Some(t) => next_clock = t,
                None => next_clock = now + resync,
            }
        }

        // Standing-backlog gauges: sampled once per loop iteration, not
        // per dispatch — gauges report levels, so the latest look wins.
        inbox_depth.set(inbox.len() as i64);
        if let Some(r) = &recorder_watch {
            recorder_buffered.set(r.buffered() as i64);
        }

        // Publish the member's locally observed status (§6
        // fail-awareness) for harness-side checks.
        let now = clock.now_hw();
        status.publish(crate::chaos::NodeStatus {
            up_to_date: member.is_up_to_date(now),
            view_len: member.view().len(),
            view_seq: member.view().id.seq,
        });
    }
}
