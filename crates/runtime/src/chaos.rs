//! Chaos orchestration for real clusters.
//!
//! [`ChaosCluster`] spawns an in-process team whose every datagram flows
//! through a [`FaultTransport`] fabric, and whose nodes can be
//! crash-stopped, restarted (rejoining via the §5 join path in a fresh
//! incarnation), and paused/resumed to fake slow processing.
//! [`ChaosController`] executes a time-scripted [`ChaosSchedule`]
//! against such a cluster; schedules are either written by hand or
//! generated deterministically from a seed within a [`FaultBudget`].
//!
//! Every injected fault is emitted as
//! [`tw_obs::TraceEvent::FaultInjected`] into the affected node's trace
//! sink, so flight recordings of adversarial runs are self-describing
//! and the `tw-trace` analyzer can check the paper's guarantees against
//! the faults that actually fired.
//!
//! Determinism contract: a [`ChaosSchedule`] is a pure function of
//! `(seed, team size, budget)`; [`ChaosSchedule::fingerprint`] hashes
//! the whole script so two runs can prove they executed the same
//! adversity. Fault *timing* relative to protocol events is still real
//! concurrency — the guarantee checked downstream is that the verdict
//! (guarantees held / violated) is identical, not the interleaving.

use crate::fault::{ChaosNet, ChaosRng, FaultTransport, LinkPlan};
use crate::metrics::NodeMetrics;
use crate::node::{
    spawn_node, DeliveryHook, ExecutorKind, Node, OpsSetup, OpsWiring, RecorderSetup, SpawnArgs,
    INBOX_CAPACITY,
};
use crate::transport::{Incoming, InboxSender, node_inbox, Transport};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use timewheel::{Config, Member};
use tw_obs::{
    FaultKind, FlightRecorder, RecorderConfig, StreamSink, TeeSink, TraceEvent, TraceSink, Tracer,
};
use tw_proto::{Incarnation, Msg, ProcessId};

/// A switch any executor thread checks before dispatching: while
/// paused, the node's threads block, faking arbitrarily slow
/// processing (the model's performance failure).
#[derive(Debug, Default)]
pub struct PauseGate {
    paused: Mutex<bool>,
    cv: Condvar,
}

impl PauseGate {
    /// A gate that starts open.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, bool> {
        self.paused.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Close the gate: executor threads block at their next check.
    pub fn pause(&self) {
        *self.lock() = true;
    }

    /// Open the gate and wake every blocked thread.
    pub fn resume(&self) {
        *self.lock() = false;
        self.cv.notify_all();
    }

    /// Is the gate currently closed?
    pub fn is_paused(&self) -> bool {
        *self.lock()
    }

    /// Block the calling thread until the gate is open.
    pub fn block_while_paused(&self) {
        let mut paused = self.lock();
        while *paused {
            paused = self
                .cv
                .wait_timeout(paused, Duration::from_millis(50))
                .map(|(g, _)| g)
                .unwrap_or_else(|e| e.into_inner().0);
        }
    }
}

// The status cell lives in its own loom-checkable module; re-exported
// here because the chaos harness is where harness code historically
// found it.
pub use crate::status::{NodeStatus, StatusCell};

/// A channel mesh like [`crate::transport::MemTransport`], but with
/// switchable slots: a crashed node's slot is unplugged (datagrams to
/// it vanish, as to any dead process) and a restarted node's fresh
/// inbox is plugged back in.
pub struct SwitchMesh {
    slots: Mutex<Vec<Option<InboxSender>>>,
}

impl SwitchMesh {
    /// A mesh of `n` unplugged slots.
    pub fn new(n: usize) -> Arc<Self> {
        Arc::new(SwitchMesh {
            slots: Mutex::new((0..n).map(|_| None).collect()),
        })
    }

    /// Plug (or unplug, with `None`) the inbox for `rank`.
    pub fn set_slot(&self, rank: usize, tx: Option<InboxSender>) {
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(slot) = slots.get_mut(rank) {
            *slot = tx;
        }
    }
}

impl Transport for SwitchMesh {
    fn send(&self, to: ProcessId, msg: &Msg) {
        let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(Some(tx)) = slots.get(to.rank()) {
            let _ = tx.deliver(Incoming::Msg(msg.sender(), msg.clone()));
        }
    }

    fn broadcast(&self, from: ProcessId, msg: &Msg) {
        let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        for (rank, slot) in slots.iter().enumerate() {
            if rank != from.rank() {
                if let Some(tx) = slot {
                    let _ = tx.deliver(Incoming::Msg(from, msg.clone()));
                }
            }
        }
    }
}

/// One scripted chaos action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosOp {
    /// Replace the default per-link fault plan (loss/dup/reorder/…).
    SetPlan(LinkPlan),
    /// Partition the team into the given sides (cross-side links cut
    /// both ways, intra-side links healed).
    Partition(Vec<Vec<ProcessId>>),
    /// Reconnect every link.
    HealAll,
    /// Cut one directed link.
    Cut(ProcessId, ProcessId),
    /// Heal one directed link.
    Heal(ProcessId, ProcessId),
    /// Crash-stop a node: its threads die, its inbox unplugs, no
    /// farewell is sent.
    Crash(ProcessId),
    /// Restart a crashed node as a fresh incarnation; it rejoins via
    /// the §5 join path.
    Restart(ProcessId),
    /// Freeze a node's executor threads (performance failure).
    Pause(ProcessId),
    /// Unfreeze a paused node.
    Resume(ProcessId),
}

impl ChaosOp {
    /// Stable numeric encoding for fingerprinting.
    fn words(&self, out: &mut Vec<u64>) {
        match self {
            ChaosOp::SetPlan(p) => out.extend([
                1,
                p.drop_ppm as u64,
                p.dup_ppm as u64,
                p.reorder_ppm as u64,
                p.delay_ppm as u64,
                p.corrupt_ppm as u64,
                p.hold_ms as u64,
                p.delay_ms as u64,
            ]),
            ChaosOp::Partition(sides) => {
                out.push(2);
                for side in sides {
                    out.push(u64::MAX); // side delimiter
                    out.extend(side.iter().map(|p| p.0 as u64));
                }
            }
            ChaosOp::HealAll => out.push(3),
            ChaosOp::Cut(a, b) => out.extend([4, a.0 as u64, b.0 as u64]),
            ChaosOp::Heal(a, b) => out.extend([5, a.0 as u64, b.0 as u64]),
            ChaosOp::Crash(p) => out.extend([6, p.0 as u64]),
            ChaosOp::Restart(p) => out.extend([7, p.0 as u64]),
            ChaosOp::Pause(p) => out.extend([8, p.0 as u64]),
            ChaosOp::Resume(p) => out.extend([9, p.0 as u64]),
        }
    }
}

impl std::fmt::Display for ChaosOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosOp::SetPlan(p) if p.is_clean() => write!(f, "set-plan clean"),
            ChaosOp::SetPlan(p) => write!(
                f,
                "set-plan drop={} dup={} reorder={} delay={} corrupt={} (ppm)",
                p.drop_ppm, p.dup_ppm, p.reorder_ppm, p.delay_ppm, p.corrupt_ppm
            ),
            ChaosOp::Partition(sides) => {
                write!(f, "partition")?;
                for (i, side) in sides.iter().enumerate() {
                    write!(f, "{}[", if i == 0 { " " } else { " | " })?;
                    for (j, p) in side.iter().enumerate() {
                        write!(f, "{}{p}", if j == 0 { "" } else { "," })?;
                    }
                    write!(f, "]")?;
                }
                Ok(())
            }
            ChaosOp::HealAll => write!(f, "heal-all"),
            ChaosOp::Cut(a, b) => write!(f, "cut {a}→{b}"),
            ChaosOp::Heal(a, b) => write!(f, "heal {a}→{b}"),
            ChaosOp::Crash(p) => write!(f, "crash {p}"),
            ChaosOp::Restart(p) => write!(f, "restart {p}"),
            ChaosOp::Pause(p) => write!(f, "pause {p}"),
            ChaosOp::Resume(p) => write!(f, "resume {p}"),
        }
    }
}

/// One step of a chaos script: do `op` at `at_ms` after the script
/// starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosStep {
    /// Milliseconds from script start.
    pub at_ms: u64,
    /// What to do.
    pub op: ChaosOp,
}

/// Limits for randomized schedule generation — how much adversity a
/// generated script may contain and how it is paced.
#[derive(Debug, Clone)]
pub struct FaultBudget {
    /// Quiet time before the first fault (group formation margin).
    pub warmup_ms: u64,
    /// Total script length; the tail past the last cleanup is quiet so
    /// the cluster can converge before the verdict.
    pub duration_ms: u64,
    /// How long each fault episode persists before its cleanup.
    pub hold_ms: u64,
    /// Quiet time after each cleanup before the next episode.
    pub settle_ms: u64,
    /// Maximum number of fault episodes.
    pub episodes: usize,
    /// Link plan applied during a loss episode ([`LinkPlan::is_clean`]
    /// disables loss episodes).
    pub loss_plan: LinkPlan,
    /// Allow minority partitions.
    pub partitions: bool,
    /// Allow crash + restart episodes.
    pub crashes: bool,
    /// Allow pause + resume episodes.
    pub pauses: bool,
}

impl Default for FaultBudget {
    fn default() -> Self {
        FaultBudget {
            warmup_ms: 2_000,
            duration_ms: 16_000,
            hold_ms: 1_000,
            settle_ms: 2_500,
            episodes: 3,
            loss_plan: LinkPlan {
                drop_ppm: 120_000,
                dup_ppm: 30_000,
                reorder_ppm: 30_000,
                hold_ms: 30,
                ..LinkPlan::clean()
            },
            partitions: true,
            crashes: true,
            pauses: true,
        }
    }
}

/// A time-scripted chaos scenario: a seed plus an ordered step list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSchedule {
    /// The seed the schedule (and the fault fabric) was built from.
    pub seed: u64,
    /// Steps in execution order.
    pub steps: Vec<ChaosStep>,
}

impl ChaosSchedule {
    /// A hand-written schedule over `steps` (sorted by time here).
    pub fn new(seed: u64, mut steps: Vec<ChaosStep>) -> Self {
        steps.sort_by_key(|s| s.at_ms);
        ChaosSchedule { seed, steps }
    }

    /// Generate a randomized-but-deterministic schedule: a pure
    /// function of `(seed, team size, budget)`. Episodes are
    /// sequential — each fault is cleaned up (healed / restarted /
    /// resumed) and given `settle_ms` of quiet before the next one, so
    /// at most a minority is ever disturbed at once and the script is
    /// survivable by construction.
    pub fn generate(seed: u64, team: usize, budget: &FaultBudget) -> ChaosSchedule {
        let mut rng = ChaosRng::new(seed);
        let mut kinds: Vec<u8> = Vec::new();
        if !budget.loss_plan.is_clean() {
            kinds.push(0);
        }
        if budget.partitions && team >= 3 {
            kinds.push(1);
        }
        if budget.crashes && team >= 3 {
            kinds.push(2);
        }
        if budget.pauses && team >= 3 {
            kinds.push(3);
        }
        let mut steps = Vec::new();
        let mut t = budget.warmup_ms;
        if !kinds.is_empty() {
            for _ in 0..budget.episodes {
                if t + budget.hold_ms + budget.settle_ms > budget.duration_ms {
                    break;
                }
                let kind = kinds[rng.below(kinds.len() as u64) as usize];
                let until = t + budget.hold_ms;
                match kind {
                    0 => {
                        steps.push(ChaosStep {
                            at_ms: t,
                            op: ChaosOp::SetPlan(budget.loss_plan),
                        });
                        steps.push(ChaosStep {
                            at_ms: until,
                            op: ChaosOp::SetPlan(LinkPlan::clean()),
                        });
                    }
                    1 => {
                        // A minority side of 1..=(team-1)/2 random members.
                        let max_side = (team - 1) / 2;
                        let side_len = 1 + rng.below(max_side as u64) as usize;
                        let mut all: Vec<ProcessId> =
                            (0..team).map(|i| ProcessId(i as u16)).collect();
                        // Deterministic partial Fisher-Yates.
                        for i in 0..side_len {
                            let j = i + rng.below((team - i) as u64) as usize;
                            all.swap(i, j);
                        }
                        let minority: Vec<ProcessId> = all[..side_len].to_vec();
                        let majority: Vec<ProcessId> = {
                            let mut m = all[side_len..].to_vec();
                            m.sort();
                            m
                        };
                        let mut minority = minority;
                        minority.sort();
                        steps.push(ChaosStep {
                            at_ms: t,
                            op: ChaosOp::Partition(vec![majority, minority]),
                        });
                        steps.push(ChaosStep {
                            at_ms: until,
                            op: ChaosOp::HealAll,
                        });
                    }
                    2 => {
                        let victim = ProcessId(rng.below(team as u64) as u16);
                        steps.push(ChaosStep {
                            at_ms: t,
                            op: ChaosOp::Crash(victim),
                        });
                        steps.push(ChaosStep {
                            at_ms: until,
                            op: ChaosOp::Restart(victim),
                        });
                    }
                    _ => {
                        let victim = ProcessId(rng.below(team as u64) as u16);
                        steps.push(ChaosStep {
                            at_ms: t,
                            op: ChaosOp::Pause(victim),
                        });
                        steps.push(ChaosStep {
                            at_ms: until,
                            op: ChaosOp::Resume(victim),
                        });
                    }
                }
                t = until + budget.settle_ms;
            }
        }
        ChaosSchedule::new(seed, steps)
    }

    /// Order-sensitive hash of the whole script. Two runs with equal
    /// fingerprints executed the identical fault schedule.
    pub fn fingerprint(&self) -> u64 {
        let mut words = vec![self.seed, self.steps.len() as u64];
        for step in &self.steps {
            words.push(step.at_ms);
            step.op.words(&mut words);
        }
        let mut acc: u64 = 0x9E37_79B9_7F4A_7C15;
        for w in words {
            acc = ChaosRng::new(acc ^ w.wrapping_mul(0xFF51_AFD7_ED55_8CCD)).next_u64();
        }
        acc
    }

    /// Milliseconds from start until the last step fires.
    pub fn last_step_ms(&self) -> u64 {
        self.steps.last().map(|s| s.at_ms).unwrap_or(0)
    }

    /// Human-readable script, one step per line.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "schedule seed={} steps={}", self.seed, self.steps.len());
        for s in &self.steps {
            let _ = writeln!(out, "  +{:>6}ms {}", s.at_ms, s.op);
        }
        out
    }
}

/// §4.2 analytic envelope for a single-failure recovery span
/// (suspicion raised → last view install), same formula the recorded
/// crash benchmark publishes in its `meta.json`.
pub fn recovery_envelope(cfg: &Config) -> tw_proto::Duration {
    cfg.decision_timeout * 2 + (cfg.big_d + cfg.delta) * (cfg.n as i64 - 2) + cfg.tick * 4
}

/// An in-process cluster wired for adversity: every datagram crosses a
/// [`FaultTransport`] over a switchable mesh, and every node can be
/// crashed, restarted, paused and resumed at runtime.
pub struct ChaosCluster {
    kind: ExecutorKind,
    cfg: Config,
    net: Arc<ChaosNet>,
    mesh: Arc<SwitchMesh>,
    wrapped: Vec<Arc<FaultTransport>>,
    sinks: Vec<Option<Arc<dyn TraceSink>>>,
    recorders: Vec<Option<Arc<FlightRecorder>>>,
    nodes: Vec<Option<Node>>,
    lives: Vec<u32>,
    ops: Option<OpsSetup>,
}

impl ChaosCluster {
    /// Spawn an untraced chaos cluster of `cfg.n` members.
    pub fn spawn(kind: ExecutorKind, cfg: Config, seed: u64) -> ChaosCluster {
        Self::spawn_inner(kind, cfg, seed, None, None, None)
    }

    /// Spawn a chaos cluster with a live ops endpoint per node (see
    /// [`crate::spawn_cluster_observed`]): scrape `/metrics`, poll
    /// `/healthz`, tail `/trace` while the fault fabric does its worst.
    /// Restarted incarnations re-bind their rank's port; if the old
    /// port is still in TIME_WAIT the node falls back to an ephemeral
    /// one (rediscover it through [`ChaosCluster::ops_addr`]).
    pub fn spawn_observed(
        kind: ExecutorKind,
        cfg: Config,
        seed: u64,
        ops: &OpsSetup,
    ) -> ChaosCluster {
        Self::spawn_inner(kind, cfg, seed, None, None, Some(ops.clone()))
    }

    /// Spawn a chaos cluster with a flight recorder per node (plus an
    /// optional shared live sink, e.g. a [`tw_obs::SharedAuditor`]).
    /// Restarted incarnations append to the same per-node recording.
    pub fn spawn_recorded(
        kind: ExecutorKind,
        cfg: Config,
        seed: u64,
        setup: &RecorderSetup,
        sink: Option<Arc<dyn TraceSink>>,
    ) -> std::io::Result<ChaosCluster> {
        Self::spawn_recorded_observed(kind, cfg, seed, setup, sink, None)
    }

    /// [`ChaosCluster::spawn_recorded`] plus an optional live ops
    /// endpoint per node — the full telemetry plane under fault
    /// injection: black-box recordings on disk, live scrape and trace
    /// streaming on localhost TCP.
    pub fn spawn_recorded_observed(
        kind: ExecutorKind,
        cfg: Config,
        seed: u64,
        setup: &RecorderSetup,
        sink: Option<Arc<dyn TraceSink>>,
        ops: Option<&OpsSetup>,
    ) -> std::io::Result<ChaosCluster> {
        std::fs::create_dir_all(&setup.dir)?;
        let recorders = (0..cfg.n)
            .map(|i| {
                let pid = ProcessId(i as u16);
                let rc = RecorderConfig::new(pid, cfg.n, cfg.epsilon).capacity(setup.capacity);
                FlightRecorder::create(setup.path_for(pid), rc).map(Arc::new)
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(Self::spawn_inner(
            kind,
            cfg,
            seed,
            Some(recorders),
            sink,
            ops.cloned(),
        ))
    }

    fn spawn_inner(
        kind: ExecutorKind,
        cfg: Config,
        seed: u64,
        recorders: Option<Vec<Arc<FlightRecorder>>>,
        sink: Option<Arc<dyn TraceSink>>,
        ops: Option<OpsSetup>,
    ) -> ChaosCluster {
        let n = cfg.n;
        let net = ChaosNet::new(seed);
        let mesh = SwitchMesh::new(n);
        let team: Vec<ProcessId> = (0..n).map(|i| ProcessId(i as u16)).collect();
        let mut wrapped = Vec::with_capacity(n);
        let mut sinks = Vec::with_capacity(n);
        let mut recs = Vec::with_capacity(n);
        for (i, &pid) in team.iter().enumerate() {
            let recorder = recorders.as_ref().map(|rs| rs[i].clone());
            let node_sink: Option<Arc<dyn TraceSink>> = match (&sink, &recorder) {
                (Some(s), Some(r)) => Some(Arc::new(TeeSink::new(vec![
                    r.clone() as Arc<dyn TraceSink>,
                    s.clone(),
                ]))),
                (Some(s), None) => Some(s.clone()),
                (None, Some(r)) => Some(r.clone() as Arc<dyn TraceSink>),
                (None, None) => None,
            };
            let tracer = match &node_sink {
                Some(s) => Tracer::new(s.clone()),
                None => Tracer::disabled(),
            };
            wrapped.push(FaultTransport::new(
                pid,
                team.clone(),
                mesh.clone() as Arc<dyn Transport>,
                net.clone(),
                tracer,
            ));
            sinks.push(node_sink);
            recs.push(recorder);
        }
        let mut cluster = ChaosCluster {
            kind,
            cfg,
            net,
            mesh,
            wrapped,
            sinks,
            recorders: recs,
            nodes: (0..n).map(|_| None).collect(),
            lives: vec![0; n],
            ops,
        };
        for rank in 0..n {
            cluster.start_node(rank);
        }
        cluster
    }

    /// Spawn (or respawn) the member at `rank` as incarnation
    /// `lives[rank]`, plugging a fresh bounded inbox into the mesh.
    fn start_node(&mut self, rank: usize) {
        let pid = ProcessId(rank as u16);
        // A restarted incarnation re-binds its rank's ops port; if the
        // old listener's accepted sockets still hold it (TIME_WAIT),
        // fall back to an ephemeral port rather than failing the
        // restart — the harness rediscovers addresses via ops_addr().
        let attempts: Vec<Option<String>> = match &self.ops {
            Some(o) => vec![Some(o.addr_for(rank)), Some("127.0.0.1:0".to_string())],
            None => vec![None],
        };
        let last = attempts.len() - 1;
        for (attempt, addr) in attempts.into_iter().enumerate() {
            let metrics = NodeMetrics::new();
            let (tx, rx) = node_inbox(INBOX_CAPACITY, Some(metrics.inbox_dropped()));
            let mut member = Member::new_unchecked(pid, self.cfg);
            member.force_incarnation(Incarnation(self.lives[rank]));
            let stream = self.ops.as_ref().map(|o| {
                Arc::new(StreamSink::new(
                    pid,
                    self.cfg.n,
                    self.cfg.epsilon,
                    o.stream_capacity,
                ))
            });
            let tracer_sink: Option<Arc<dyn TraceSink>> = match (&self.sinks[rank], &stream) {
                (Some(s), Some(st)) => Some(Arc::new(TeeSink::new(vec![
                    s.clone(),
                    st.clone() as Arc<dyn TraceSink>,
                ]))),
                (Some(s), None) => Some(s.clone()),
                (None, Some(st)) => Some(st.clone() as Arc<dyn TraceSink>),
                (None, None) => None,
            };
            if let Some(s) = tracer_sink {
                member.set_tracer(Tracer::new(s));
            }
            self.mesh.set_slot(rank, Some(tx));
            let hook: Option<DeliveryHook> = None;
            match spawn_node(SpawnArgs {
                kind: self.kind,
                member,
                inbox: rx,
                transport: self.wrapped[rank].clone() as Arc<dyn Transport>,
                udp: None,
                extra_handles: Vec::new(),
                hook,
                recorder: self.recorders[rank].clone(),
                metrics,
                clock: Arc::new(self.net.clock()),
                ops: addr.map(|a| OpsWiring {
                    addr: a,
                    stream: stream.clone(),
                }),
            }) {
                Ok(node) => {
                    self.nodes[rank] = Some(node);
                    return;
                }
                Err(e) if attempt < last => {
                    let _ = e; // retry on the ephemeral address
                }
                Err(e) => panic!("ops endpoint bind failed for node {rank}: {e}"),
            }
        }
    }

    /// The ops endpoint address of the node at `rank` (`None` while
    /// crashed or when the cluster was spawned without ops).
    pub fn ops_addr(&self, rank: usize) -> Option<std::net::SocketAddr> {
        self.node(rank).and_then(|n| n.ops_addr())
    }

    /// The shared fault fabric (plans, cuts, counters, clock).
    pub fn net(&self) -> &Arc<ChaosNet> {
        &self.net
    }

    /// The cluster configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// The live node at `rank`, if not currently crashed.
    pub fn node(&self, rank: usize) -> Option<&Node> {
        self.nodes.get(rank).and_then(|n| n.as_ref())
    }

    /// Locally observed status of the member at `rank` (crashed nodes
    /// report `None`).
    pub fn status(&self, rank: usize) -> Option<NodeStatus> {
        self.node(rank).map(|n| n.status())
    }

    /// How many times the node at `rank` has been (re)started.
    pub fn incarnation(&self, rank: usize) -> u32 {
        self.lives.get(rank).copied().unwrap_or(0)
    }

    /// Emit a [`TraceEvent::FaultInjected`] into `rank`'s sink and the
    /// fabric's ledger.
    fn emit_fault(&self, rank: usize, kind: FaultKind, target: ProcessId, arg: u32) {
        self.net.count(kind);
        if let Some(s) = self.sinks.get(rank).and_then(|s| s.as_ref()) {
            s.record(&TraceEvent::FaultInjected {
                pid: ProcessId(rank as u16),
                at: self.net.stamp(),
                kind,
                target,
                arg,
            });
        }
    }

    /// Crash-stop `pid`: unplug its inbox, kill its threads, send no
    /// farewell. No-op if already crashed.
    pub fn crash(&mut self, pid: ProcessId, arg: u32) {
        let rank = pid.rank();
        if let Some(node) = self.nodes.get_mut(rank).and_then(Option::take) {
            self.emit_fault(rank, FaultKind::Crash, pid, arg);
            self.mesh.set_slot(rank, None);
            node.shutdown();
        }
    }

    /// Restart a crashed `pid` as a fresh incarnation; it rejoins via
    /// the normal §5 join path. No-op if the node is running.
    pub fn restart(&mut self, pid: ProcessId, arg: u32) {
        let rank = pid.rank();
        if rank < self.nodes.len() && self.nodes[rank].is_none() {
            self.lives[rank] += 1;
            self.start_node(rank);
            self.emit_fault(rank, FaultKind::Restart, pid, arg);
        }
    }

    /// Freeze `pid`'s executor threads (fake slow processing).
    pub fn pause(&self, pid: ProcessId, arg: u32) {
        if let Some(node) = self.node(pid.rank()) {
            self.emit_fault(pid.rank(), FaultKind::Pause, pid, arg);
            node.pause();
        }
    }

    /// Unfreeze `pid`.
    pub fn resume(&self, pid: ProcessId, arg: u32) {
        if let Some(node) = self.node(pid.rank()) {
            node.resume();
            self.emit_fault(pid.rank(), FaultKind::Resume, pid, arg);
        }
    }

    /// Apply one scripted op (`arg` tags the emitted fault events,
    /// conventionally the step index).
    pub fn apply(&mut self, op: &ChaosOp, arg: u32) {
        match op {
            ChaosOp::SetPlan(p) => self.net.set_default_plan(*p),
            ChaosOp::Partition(sides) => {
                for (from, to) in self.net.partition(sides) {
                    self.emit_fault(from.rank(), FaultKind::CutLink, to, arg);
                }
            }
            ChaosOp::HealAll => {
                for (from, to) in self.net.heal_all() {
                    self.emit_fault(from.rank(), FaultKind::HealLink, to, arg);
                }
            }
            ChaosOp::Cut(a, b) => {
                if self.net.cut(*a, *b) {
                    self.emit_fault(a.rank(), FaultKind::CutLink, *b, arg);
                }
            }
            ChaosOp::Heal(a, b) => {
                if self.net.heal(*a, *b) {
                    self.emit_fault(a.rank(), FaultKind::HealLink, *b, arg);
                }
            }
            ChaosOp::Crash(p) => self.crash(*p, arg),
            ChaosOp::Restart(p) => self.restart(*p, arg),
            ChaosOp::Pause(p) => self.pause(*p, arg),
            ChaosOp::Resume(p) => self.resume(*p, arg),
        }
    }

    /// Flush every live node's flight recorder.
    pub fn flush_recorders(&self) {
        for node in self.nodes.iter().flatten() {
            node.flush_recorder();
        }
    }

    /// Paths of the per-node recording files, when recording.
    pub fn recording_paths(&self) -> Vec<std::path::PathBuf> {
        self.recorders
            .iter()
            .flatten()
            .map(|r| r.path().to_path_buf())
            .collect()
    }

    /// Tear the cluster down: resume anything paused, stop every live
    /// node, join all threads.
    pub fn shutdown(mut self) {
        for node in self.nodes.iter_mut().filter_map(Option::take) {
            node.shutdown();
        }
    }
}

/// What a schedule execution did, for verdicts and re-run comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosReport {
    /// Steps applied (always the full script).
    pub steps: usize,
    /// [`ChaosSchedule::fingerprint`] of the executed script.
    pub fingerprint: u64,
    /// Per-kind injected-fault totals from the fabric, in
    /// [`FaultKind::ALL`] order. Probabilistic kinds (drop, …) depend
    /// on traffic volume and are *not* part of the determinism
    /// contract; the fingerprint and the scripted kinds are.
    pub injected: [u64; FaultKind::ALL.len()],
}

/// Executes a [`ChaosSchedule`] against a live [`ChaosCluster`] in real
/// time.
pub struct ChaosController;

impl ChaosController {
    /// Run the whole script, sleeping between steps; returns the
    /// execution report. Steps fire in order even when the clock slips
    /// (a late step fires immediately).
    pub fn execute(cluster: &mut ChaosCluster, schedule: &ChaosSchedule) -> ChaosReport {
        let start = Instant::now();
        for (i, step) in schedule.steps.iter().enumerate() {
            let due = start + Duration::from_millis(step.at_ms);
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            cluster.apply(&step.op, i as u32);
        }
        ChaosReport {
            steps: schedule.steps.len(),
            fingerprint: schedule.fingerprint(),
            injected: cluster.net.injected_counts(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;
    use tw_proto::{ClockSyncMsg, HwTime};

    fn p(n: u16) -> ProcessId {
        ProcessId(n)
    }

    #[test]
    fn pause_gate_blocks_until_resumed() {
        let gate = Arc::new(PauseGate::new());
        gate.pause();
        assert!(gate.is_paused());
        let g = gate.clone();
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let d = done.clone();
        let h = std::thread::spawn(move || {
            g.block_while_paused();
            d.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(!done.load(Ordering::SeqCst), "thread must be blocked");
        gate.resume();
        h.join().unwrap();
        assert!(done.load(Ordering::SeqCst));
    }

    #[test]
    fn switch_mesh_unplugs_and_replugs() {
        let mesh = SwitchMesh::new(2);
        let msg = Msg::ClockSync(ClockSyncMsg::Request {
            sender: p(0),
            rid: 1,
            hw_send: HwTime(1),
        });
        // Unplugged: datagrams vanish (dead process).
        mesh.send(p(1), &msg);
        let (tx, rx) = node_inbox(8, None);
        mesh.set_slot(1, Some(tx));
        mesh.send(p(1), &msg);
        assert!(rx.try_recv().is_ok());
        mesh.set_slot(1, None);
        mesh.send(p(1), &msg);
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn generated_schedules_are_deterministic_and_paced() {
        let budget = FaultBudget::default();
        let a = ChaosSchedule::generate(7, 5, &budget);
        let b = ChaosSchedule::generate(7, 5, &budget);
        let c = ChaosSchedule::generate(8, 5, &budget);
        assert_eq!(a, b, "same seed → same script");
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint(), "seed must matter");
        assert!(!a.steps.is_empty());
        // Sorted, inside the budget window, and every disruptive op is
        // cleaned up by a later step.
        let mut last = 0;
        for s in &a.steps {
            assert!(s.at_ms >= last);
            last = s.at_ms;
            assert!(s.at_ms <= budget.duration_ms);
        }
        let mut open: Vec<&ChaosOp> = Vec::new();
        for s in &a.steps {
            match &s.op {
                ChaosOp::Crash(_) => open.push(&s.op),
                ChaosOp::Restart(pid) => {
                    assert!(matches!(open.pop(), Some(ChaosOp::Crash(c)) if c == pid));
                }
                ChaosOp::Pause(_) => open.push(&s.op),
                ChaosOp::Resume(pid) => {
                    assert!(matches!(open.pop(), Some(ChaosOp::Pause(c)) if c == pid));
                }
                ChaosOp::Partition(_) => open.push(&s.op),
                ChaosOp::HealAll => {
                    assert!(matches!(open.pop(), Some(ChaosOp::Partition(_))));
                }
                ChaosOp::SetPlan(plan) if plan.is_clean() => {
                    assert!(matches!(open.pop(), Some(ChaosOp::SetPlan(_))));
                }
                ChaosOp::SetPlan(_) => open.push(&s.op),
                _ => {}
            }
        }
        assert!(open.is_empty(), "every episode must be cleaned up");
    }

    #[test]
    fn generated_partitions_cut_only_minorities() {
        for seed in 0..20 {
            let s = ChaosSchedule::generate(seed, 5, &FaultBudget::default());
            for step in &s.steps {
                if let ChaosOp::Partition(sides) = &step.op {
                    assert_eq!(sides.len(), 2);
                    assert!(sides[1].len() * 2 < 5, "side B must be a minority");
                    assert_eq!(sides[0].len() + sides[1].len(), 5);
                }
            }
        }
    }

    #[test]
    fn fingerprint_is_sensitive_to_step_changes() {
        let a = ChaosSchedule::new(
            1,
            vec![ChaosStep {
                at_ms: 100,
                op: ChaosOp::Crash(p(2)),
            }],
        );
        let mut b = a.clone();
        b.steps[0].op = ChaosOp::Crash(p(3));
        let mut c = a.clone();
        c.steps[0].at_ms = 101;
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn envelope_matches_the_crash_benchmark_formula() {
        let cfg = Config::for_team(5, tw_proto::Duration::from_millis(10));
        let env = recovery_envelope(&cfg);
        let by_hand = cfg.decision_timeout * 2 + (cfg.big_d + cfg.delta) * 3 + cfg.tick * 4;
        assert_eq!(env, by_hand);
        assert!(env.as_micros() > 0);
    }

    #[test]
    fn describe_lists_every_step() {
        let s = ChaosSchedule::generate(5, 5, &FaultBudget::default());
        let text = s.describe();
        assert_eq!(text.lines().count(), s.steps.len() + 1);
        assert!(text.contains("seed=5"));
    }
}
