//! # tw-runtime — execution backends for the timewheel protocol
//!
//! The protocol core ([`timewheel::Member`]) is a sans-I/O state machine;
//! this crate hosts it on real threads, real clocks and real (or
//! in-memory) datagrams. Two executors are provided, mirroring the
//! paper's §5 implementation discussion:
//!
//! * [`event_loop`] — the design the paper chose: a **single-threaded
//!   event handler** per process that demultiplexes message arrivals,
//!   protocol ticks and clock-synchronization ticks, dispatching each to
//!   its handler with no locking and no cross-thread scheduling.
//! * [`threaded`] — the design the paper measured and rejected: one
//!   thread per event *type* (receive, protocol tick, clock tick),
//!   synchronizing on a shared lock around the protocol state. It exists
//!   so the §5 comparison (experiment T7) can be reproduced.
//!
//! Transports: [`transport::MemTransport`] (an in-process crossbeam
//! channel mesh) and [`transport::UdpTransport`] (real UDP datagrams with
//! the [`tw_proto::codec`] wire format — the paper's deployment style).

// `deny`, not `forbid`: the one exception is the vectored-I/O FFI in
// [`mmsg`], which carries a module-local `#[allow(unsafe_code)]` and a
// written safety argument. Everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod clock;
pub mod event_loop;
pub mod fault;
pub mod metrics;
pub mod mmsg;
pub mod node;
pub mod threaded;
pub mod transport;

pub use chaos::{ChaosCluster, ChaosController, ChaosOp, ChaosReport, ChaosSchedule, FaultBudget};
pub use clock::{RealClock, RuntimeClock};
pub use fault::{ChaosNet, ChaosRng, FaultTransport, LinkPlan};
pub use metrics::NodeMetrics;
pub use node::{
    spawn_cluster, spawn_cluster_recorded, spawn_cluster_recorded_traced, spawn_cluster_traced,
    spawn_cluster_with_hooks, spawn_udp_cluster, AppEvent, DeliveryHook, ExecutorKind, Node,
    NodeCommand, NodeOutput, RecorderSetup,
};
pub use mmsg::BatchSocket;
pub use transport::{MemTransport, OutBatch, Transport, UdpTransport, WireStats};

/// Commonly used items.
pub mod prelude {
    pub use crate::chaos::{ChaosCluster, ChaosController, ChaosOp, ChaosSchedule};
    pub use crate::clock::{RealClock, RuntimeClock};
    pub use crate::fault::{ChaosNet, ChaosRng, FaultTransport, LinkPlan};
    pub use crate::metrics::NodeMetrics;
    pub use crate::node::{
        spawn_cluster, spawn_cluster_recorded, spawn_cluster_traced, spawn_udp_cluster,
        ExecutorKind, Node, RecorderSetup,
    };
    pub use crate::transport::{MemTransport, OutBatch, Transport, UdpTransport, WireStats};
}
