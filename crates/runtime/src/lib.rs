//! # tw-runtime — execution backends for the timewheel protocol
//!
//! The protocol core ([`timewheel::Member`]) is a sans-I/O state machine;
//! this crate hosts it on real threads, real clocks and real (or
//! in-memory) datagrams. Two executors are provided, mirroring the
//! paper's §5 implementation discussion:
//!
//! * [`event_loop`] — the design the paper chose: a **single-threaded
//!   event handler** per process that demultiplexes message arrivals,
//!   protocol ticks and clock-synchronization ticks, dispatching each to
//!   its handler with no locking and no cross-thread scheduling.
//! * [`threaded`] — the design the paper measured and rejected: one
//!   thread per event *type* (receive, protocol tick, clock tick),
//!   synchronizing on a shared lock around the protocol state. It exists
//!   so the §5 comparison (experiment T7) can be reproduced.
//!
//! Transports: [`transport::MemTransport`] (an in-process crossbeam
//! channel mesh) and [`transport::UdpTransport`] (real UDP datagrams with
//! the [`tw_proto::codec`] wire format — the paper's deployment style).

// `deny`, not `forbid`: the one exception is the vectored-I/O FFI in
// [`mmsg`], which carries a module-local `#[allow(unsafe_code)]` and a
// written safety argument. Everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

// The portable core — compiled under loom too (`RUSTFLAGS="--cfg
// loom"`), so `tests/loom.rs` can model-check the hand-rolled
// concurrency primitives in isolation (see DESIGN.md §13).
pub mod inbox;
pub mod status;

// Everything that touches real threads, sockets, clocks or syscalls is
// outside the loom model and compiles only in normal builds.
#[cfg(not(loom))]
pub mod chaos;
#[cfg(not(loom))]
pub mod clock;
#[cfg(not(loom))]
pub mod event_loop;
#[cfg(not(loom))]
pub mod fault;
#[cfg(not(loom))]
pub mod metrics;
#[cfg(not(loom))]
pub mod mmsg;
#[cfg(not(loom))]
pub mod node;
#[cfg(not(loom))]
pub mod threaded;
#[cfg(not(loom))]
pub mod transport;

#[cfg(not(loom))]
pub use chaos::{ChaosCluster, ChaosController, ChaosOp, ChaosReport, ChaosSchedule, FaultBudget};
#[cfg(not(loom))]
pub use clock::{RealClock, RuntimeClock};
#[cfg(not(loom))]
pub use fault::{ChaosNet, ChaosRng, FaultTransport, LinkPlan};
#[cfg(not(loom))]
pub use metrics::NodeMetrics;
#[cfg(not(loom))]
pub use node::{
    spawn_cluster, spawn_cluster_observed, spawn_cluster_recorded, spawn_cluster_recorded_traced,
    spawn_cluster_traced, spawn_cluster_with_hooks, spawn_udp_cluster, spawn_udp_cluster_observed,
    AppEvent, DeliveryHook, ExecutorKind, Node, NodeCommand, NodeOutput, OpsSetup, RecorderSetup,
};
#[cfg(not(loom))]
pub use mmsg::BatchSocket;
pub use status::{NodeStatus, StatusCell};
#[cfg(not(loom))]
pub use transport::{MemTransport, OutBatch, Transport, UdpTransport, WireStats};

/// Commonly used items.
#[cfg(not(loom))]
pub mod prelude {
    pub use crate::chaos::{ChaosCluster, ChaosController, ChaosOp, ChaosSchedule};
    pub use crate::clock::{RealClock, RuntimeClock};
    pub use crate::fault::{ChaosNet, ChaosRng, FaultTransport, LinkPlan};
    pub use crate::metrics::NodeMetrics;
    pub use crate::node::{
        spawn_cluster, spawn_cluster_observed, spawn_cluster_recorded, spawn_cluster_traced,
        spawn_udp_cluster, ExecutorKind, Node, OpsSetup, RecorderSetup,
    };
    pub use crate::transport::{MemTransport, OutBatch, Transport, UdpTransport, WireStats};
}
