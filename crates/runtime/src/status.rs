//! The lock-free node status cell.
//!
//! [`StatusCell`] is the one piece of hand-rolled lock-free code in the
//! runtime: the executor packs its locally observable protocol status
//! into a single `AtomicU64` after every dispatch, and harness threads
//! poll it without ever touching the member or taking a lock. Because
//! it is hand-rolled, it is also the code most worth model-checking:
//! this module compiles under [loom](https://docs.rs/loom) (build with
//! `RUSTFLAGS="--cfg loom"`), and `tests/loom.rs` exhaustively explores
//! the publish/read interleavings to prove a reader can never observe a
//! torn status or a view sequence running backwards under single-writer
//! use.
//!
//! The packing gives 48 bits to the view sequence, 8 to the view length
//! and the top bit to the fail-awareness flag — enough for ~10⁹ years
//! of 1 ms view turnover and the paper's small-group regime, in one
//! word, so publish and read are each a single atomic access with
//! release/acquire ordering.

#[cfg(loom)]
use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicU64, Ordering};

/// A node's locally observable protocol status — what the node itself
/// can assert about its group without any global observer. This is the
/// §6 fail-awareness interface: a minority member's `up_to_date` goes
/// false from its *own* clock and watchdog, with no oracle involved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeStatus {
    /// The member's own fail-aware up-to-date indicator.
    pub up_to_date: bool,
    /// Size of the member's current view (0 before the first install).
    pub view_len: usize,
    /// Sequence number of the member's current view.
    pub view_seq: u64,
}

/// Lock-free cell the executor publishes [`NodeStatus`] into after
/// every dispatch, so harness code can poll a live node without
/// touching the member.
#[derive(Debug)]
pub struct StatusCell(AtomicU64);

const STATUS_SEQ_BITS: u32 = 48;
const STATUS_LEN_BITS: u32 = 8;

// Manual impl: loom's `AtomicU64::new` is not const, so the derive
// path (`#[derive(Default)]` on a tuple over the atomic) is the only
// thing that differs between cfgs — write it once by hand instead.
impl Default for StatusCell {
    fn default() -> Self {
        StatusCell(AtomicU64::new(0))
    }
}

impl StatusCell {
    /// A cell reading "not up to date, no view".
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish a fresh status (executor side).
    pub fn publish(&self, s: NodeStatus) {
        let packed = ((s.up_to_date as u64) << 63)
            | (((s.view_len as u64) & ((1 << STATUS_LEN_BITS) - 1)) << STATUS_SEQ_BITS)
            | (s.view_seq & ((1 << STATUS_SEQ_BITS) - 1));
        self.0.store(packed, Ordering::Release);
    }

    /// Read the latest published status (harness side).
    pub fn read(&self) -> NodeStatus {
        let packed = self.0.load(Ordering::Acquire);
        NodeStatus {
            up_to_date: packed >> 63 == 1,
            view_len: ((packed >> STATUS_SEQ_BITS) & ((1 << STATUS_LEN_BITS) - 1)) as usize,
            view_seq: packed & ((1 << STATUS_SEQ_BITS) - 1),
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn status_cell_round_trips() {
        let cell = StatusCell::new();
        assert_eq!(
            cell.read(),
            NodeStatus {
                up_to_date: false,
                view_len: 0,
                view_seq: 0
            }
        );
        let s = NodeStatus {
            up_to_date: true,
            view_len: 5,
            view_seq: 1234,
        };
        cell.publish(s);
        assert_eq!(cell.read(), s);
    }

    #[test]
    fn packing_saturates_at_field_boundaries() {
        let cell = StatusCell::new();
        // A view length beyond 8 bits and a sequence beyond 48 bits
        // wrap within their fields without corrupting neighbours.
        cell.publish(NodeStatus {
            up_to_date: true,
            view_len: 0x1ff,
            view_seq: (1 << STATUS_SEQ_BITS) + 7,
        });
        let got = cell.read();
        assert!(got.up_to_date);
        assert_eq!(got.view_len, 0xff);
        assert_eq!(got.view_seq, 7);
    }

    #[test]
    fn max_in_range_values_round_trip_exactly() {
        let cell = StatusCell::new();
        let s = NodeStatus {
            up_to_date: false,
            view_len: 0xff,
            view_seq: (1 << STATUS_SEQ_BITS) - 1,
        };
        cell.publish(s);
        assert_eq!(cell.read(), s);
    }
}
