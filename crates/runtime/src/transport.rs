//! Datagram transports for runtime nodes.
//!
//! The protocol assumes an unreliable, unordered datagram service. Both
//! transports here deliver [`Msg`] values to a node's inbox channel:
//!
//! * [`MemTransport`] — a crossbeam channel mesh inside one process.
//!   Reliable and fast; the timed-asynchronous failure modes are absent,
//!   which is fine: the protocol only *tolerates* them.
//! * [`UdpTransport`] — real UDP sockets on localhost (or any address
//!   map), using the framed zero-copy wire format ([`tw_proto::frame`],
//!   wire v2). Genuinely lossy under load, exactly the substrate the
//!   paper deployed on.
//!
//! Hot-path batching: executors collect a dispatch's outbound messages
//! into an [`OutBatch`] and hand the whole thing to [`Transport::flush`]
//! at once. [`UdpTransport`] coalesces the batch into one multi-frame
//! datagram per destination (a broadcast-only batch is encoded once and
//! fanned out) and submits the fan-out through a single vectored
//! syscall where the platform has one ([`crate::mmsg`]). The default
//! `flush` decomposes into per-message `send`/`broadcast`, so
//! fault-injecting transports keep their per-message fault fates and
//! deterministic chaos verdicts.
//!
//! Node inboxes are **bounded**: when a node cannot keep up, excess
//! datagrams are shed (the datagram model permits omission) and counted
//! in `tw_inbox_dropped_total`, so overload degrades gracefully and
//! observably instead of growing an unbounded queue.

use crate::mmsg::{BatchSocket, RecvSlot};
use std::collections::HashMap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use tw_obs::{Counter, Gauge};
use tw_proto::frame::{self, FrameBuilder};
use tw_proto::{Msg, ProcessId};

/// A way for one node to put datagrams on the wire.
pub trait Transport: Send + Sync + 'static {
    /// Send to one team member (best effort).
    fn send(&self, to: ProcessId, msg: &Msg);

    /// Broadcast to every other team member (best effort).
    fn broadcast(&self, from: ProcessId, msg: &Msg);

    /// Put a whole dispatch's outbound messages on the wire at once.
    ///
    /// The default decomposes into per-message [`Transport::send`] /
    /// [`Transport::broadcast`] calls in action order — semantically the
    /// pre-batching behavior, which fault-injecting transports rely on
    /// for per-message fault fates. Transports with a cheaper coalesced
    /// path (channel mesh, UDP) override it. Always leaves `batch`
    /// empty and ready for reuse.
    fn flush(&self, from: ProcessId, batch: &mut OutBatch) {
        for item in batch.items.drain(..) {
            match item {
                OutItem::Broadcast(m) => self.broadcast(from, &m),
                OutItem::Send(to, m) => self.send(to, &m),
            }
        }
    }
}

/// One outbound message of a dispatch batch.
#[derive(Debug, Clone)]
pub enum OutItem {
    /// To every other member.
    Broadcast(Msg),
    /// To one member.
    Send(ProcessId, Msg),
}

/// A dispatch's outbound messages, collected by the executor and handed
/// to [`Transport::flush`] in one call.
///
/// Owned by the executor loop and reused across dispatches, so the item
/// vector and the per-destination encoder scratch inside amortize to
/// zero allocations in steady state.
#[derive(Default)]
pub struct OutBatch {
    pub(crate) items: Vec<OutItem>,
    /// Reusable framed-datagram builders (one per destination touched
    /// by the coalescing transports; index is destination rank).
    pub(crate) builders: Vec<FrameBuilder>,
}

impl OutBatch {
    /// An empty batch.
    pub fn new() -> Self {
        OutBatch::default()
    }

    /// Queue a broadcast.
    pub fn push_broadcast(&mut self, msg: Msg) {
        self.items.push(OutItem::Broadcast(msg));
    }

    /// Queue a point-to-point send.
    pub fn push_send(&mut self, to: ProcessId, msg: Msg) {
        self.items.push(OutItem::Send(to, msg));
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Queued messages.
    pub fn len(&self) -> usize {
        self.items.len()
    }
}

// The inbox types live in their own loom-checkable module
// ([`crate::inbox`]); re-exported here because transports are where
// callers historically found them.
pub use crate::inbox::{node_inbox, Deliver, InboxSender, Incoming};

/// In-process channel mesh: node `i`'s sender delivers into node `i`'s
/// inbox channel.
pub struct MemTransport {
    inboxes: Vec<InboxSender>,
}

impl MemTransport {
    /// Build a mesh over the given inbox senders (index = rank).
    pub fn new(inboxes: Vec<InboxSender>) -> Arc<Self> {
        Arc::new(MemTransport { inboxes })
    }

    /// Team size.
    pub fn len(&self) -> usize {
        self.inboxes.len()
    }

    /// True when the mesh is empty.
    pub fn is_empty(&self) -> bool {
        self.inboxes.is_empty()
    }
}

impl Transport for MemTransport {
    fn send(&self, to: ProcessId, msg: &Msg) {
        if let Some(tx) = self.inboxes.get(to.rank()) {
            // Shed and closed inboxes both read as datagram loss.
            let _ = tx.deliver(Incoming::Msg(msg.sender(), msg.clone()));
        }
    }

    fn broadcast(&self, from: ProcessId, msg: &Msg) {
        for (rank, tx) in self.inboxes.iter().enumerate() {
            if rank != from.rank() {
                let _ = tx.deliver(Incoming::Msg(from, msg.clone()));
            }
        }
    }

    /// Coalesced path: each destination gets its share of the batch as
    /// one [`Incoming::Batch`] (one channel operation, one dispatch),
    /// preserving the per-destination action order.
    fn flush(&self, from: ProcessId, batch: &mut OutBatch) {
        if batch.items.is_empty() {
            return;
        }
        for (rank, tx) in self.inboxes.iter().enumerate() {
            if rank == from.rank() {
                continue;
            }
            let mut msgs: Vec<Msg> = Vec::new();
            for item in &batch.items {
                match item {
                    OutItem::Broadcast(m) => msgs.push(m.clone()),
                    OutItem::Send(to, m) if to.rank() == rank => msgs.push(m.clone()),
                    OutItem::Send(..) => {}
                }
            }
            match msgs.len() {
                0 => {}
                1 => {
                    let _ = tx.deliver(Incoming::Msg(from, msgs.pop().expect("len 1")));
                }
                _ => {
                    let _ = tx.deliver(Incoming::Batch(from, msgs));
                }
            }
        }
        batch.items.clear();
    }
}

/// What the UDP receive loop should do about a socket error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RecvErrorAction {
    /// Expected poll-timeout wakeup: loop again, reset any backoff.
    Poll,
    /// Transient fault (e.g. an ICMP-induced `ConnectionReset` on
    /// Windows/Linux, `Interrupted`, resource pressure): count it as an
    /// omission and retry after a bounded backoff. A datagram service
    /// has no connection to lose, so no socket error here is fatal.
    Retry,
}

/// Classify a `recv_from` error. Kept pure so the policy is testable
/// without a socket.
pub(crate) fn classify_recv_error(kind: std::io::ErrorKind) -> RecvErrorAction {
    match kind {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => RecvErrorAction::Poll,
        _ => RecvErrorAction::Retry,
    }
}

/// Wire-level counters of one [`UdpTransport`] (plain atomics — these
/// sit on the hot path; the registry-backed metrics stay at the node
/// level). `send_syscalls` vs. `msgs_sent` is the quantity the batching
/// work optimizes: syscalls per protocol message.
#[derive(Debug, Default)]
struct WireCounters {
    send_syscalls: AtomicU64,
    datagrams_sent: AtomicU64,
    msgs_sent: AtomicU64,
    datagrams_recv: AtomicU64,
    msgs_recv: AtomicU64,
    decode_errors: AtomicU64,
}

/// A point-in-time copy of a transport's wire counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Send-side syscalls issued (`sendto`/`sendmmsg` calls).
    pub send_syscalls: u64,
    /// Datagrams put on the wire.
    pub datagrams_sent: u64,
    /// Protocol messages put on the wire (≥ datagrams when coalescing).
    pub msgs_sent: u64,
    /// Datagrams received and decoded.
    pub datagrams_recv: u64,
    /// Protocol messages received.
    pub msgs_recv: u64,
    /// Datagrams dropped as undecodable (bad version, truncation,
    /// corruption — the model's omission failure).
    pub decode_errors: u64,
}

/// Real UDP datagrams with the framed zero-copy wire format (v2).
pub struct UdpTransport {
    socket: UdpSocket,
    peers: HashMap<ProcessId, SocketAddr>,
    /// Peer addresses ordered by rank, self excluded lazily per call
    /// (stable iteration order for the vectored fan-out).
    peer_list: Vec<(ProcessId, SocketAddr)>,
    me: ProcessId,
    stop: AtomicBool,
    wire: WireCounters,
    /// Optional `tw_mmsg_batch_fill` gauge: datagrams coalesced into the
    /// most recent vectored submission (set once at node wiring time;
    /// the hot path pays one pointer load plus an atomic store).
    batch_fill: OnceLock<Gauge>,
}

impl UdpTransport {
    /// Bind `me`'s socket and remember the peer address map.
    pub fn bind(
        me: ProcessId,
        addr: SocketAddr,
        peers: HashMap<ProcessId, SocketAddr>,
    ) -> std::io::Result<Arc<Self>> {
        let socket = UdpSocket::bind(addr)?;
        let mut peer_list: Vec<(ProcessId, SocketAddr)> =
            peers.iter().map(|(p, a)| (*p, *a)).collect();
        peer_list.sort_by_key(|(p, _)| *p);
        Ok(Arc::new(UdpTransport {
            socket,
            peers,
            peer_list,
            me,
            stop: AtomicBool::new(false),
            wire: WireCounters::default(),
            batch_fill: OnceLock::new(),
        }))
    }

    /// Ask the receive loop to exit at its next poll.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Wire the `tw_mmsg_batch_fill` gauge: every vectored submission
    /// records how many datagrams it coalesced. First caller wins.
    pub fn set_batch_fill_gauge(&self, gauge: Gauge) {
        let _ = self.batch_fill.set(gauge);
    }

    fn note_batch_fill(&self, datagrams: usize) {
        if let Some(g) = self.batch_fill.get() {
            g.set(datagrams as i64);
        }
    }

    /// Current wire counters.
    pub fn wire_stats(&self) -> WireStats {
        WireStats {
            send_syscalls: self.wire.send_syscalls.load(Ordering::Relaxed),
            datagrams_sent: self.wire.datagrams_sent.load(Ordering::Relaxed),
            msgs_sent: self.wire.msgs_sent.load(Ordering::Relaxed),
            datagrams_recv: self.wire.datagrams_recv.load(Ordering::Relaxed),
            msgs_recv: self.wire.msgs_recv.load(Ordering::Relaxed),
            decode_errors: self.wire.decode_errors.load(Ordering::Relaxed),
        }
    }

    fn note_sent(&self, syscalls: u64, datagrams: u64, msgs: u64) {
        self.wire.send_syscalls.fetch_add(syscalls, Ordering::Relaxed);
        self.wire
            .datagrams_sent
            .fetch_add(datagrams, Ordering::Relaxed);
        self.wire.msgs_sent.fetch_add(msgs, Ordering::Relaxed);
    }

    /// Spawn the receive loop: decodes framed datagrams and forwards
    /// their messages into `inbox` until shutdown is requested or the
    /// inbox closes. The receive side drains the socket queue in batches
    /// ([`crate::mmsg::BatchSocket::recv_batch`]) so a burst of
    /// datagrams costs one syscall, not one each. Socket errors are
    /// treated as omissions — counted into `recv_errors` (wire it to
    /// `tw_udp_recv_errors_total`) and retried with a bounded backoff —
    /// never as a reason to abandon the socket. Undecodable datagrams
    /// (unknown wire version, truncation, corruption) are dropped and
    /// counted: the model's omission failure.
    pub fn spawn_receiver(
        self: &Arc<Self>,
        inbox: InboxSender,
        recv_errors: Option<Counter>,
    ) -> std::thread::JoinHandle<()> {
        let me = self.clone();
        std::thread::Builder::new()
            .name(format!("udp-rx-{}", me.me))
            .spawn(move || {
                // 16 max-size slots: enough to drain a heavy burst per
                // syscall without a multi-MB standing buffer.
                let mut slots: Vec<RecvSlot> =
                    (0..16).map(|_| RecvSlot::new(64 * 1024)).collect();
                // A read timeout lets the thread notice inbox closure.
                let _ = me
                    .socket
                    .set_read_timeout(Some(std::time::Duration::from_millis(200)));
                let min_backoff = std::time::Duration::from_millis(1);
                let max_backoff = std::time::Duration::from_millis(100);
                let mut backoff = min_backoff;
                loop {
                    if me.stop.load(Ordering::Relaxed) {
                        return;
                    }
                    match me.socket.recv_batch(&mut slots) {
                        Ok(filled) => {
                            backoff = min_backoff;
                            for slot in &slots[..filled] {
                                match frame::decode_datagram(slot.datagram()) {
                                    Ok(msgs) => {
                                        me.wire.datagrams_recv.fetch_add(1, Ordering::Relaxed);
                                        me.wire
                                            .msgs_recv
                                            .fetch_add(msgs.len() as u64, Ordering::Relaxed);
                                        let delivered = deliver_decoded(&inbox, msgs);
                                        if delivered == Deliver::Closed {
                                            return;
                                        }
                                        // Shed reads as datagram loss.
                                    }
                                    Err(_) => {
                                        me.wire.decode_errors.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                        }
                        Err(e) => match classify_recv_error(e.kind()) {
                            RecvErrorAction::Poll => backoff = min_backoff,
                            RecvErrorAction::Retry => {
                                if let Some(c) = &recv_errors {
                                    c.inc();
                                }
                                std::thread::sleep(backoff);
                                backoff = (backoff * 2).min(max_backoff);
                            }
                        },
                    }
                }
            })
            .expect("spawn udp receiver")
    }
}

/// Hand one decoded datagram's messages to the inbox: single messages
/// as [`Incoming::Msg`], coalesced datagrams as one [`Incoming::Batch`]
/// (one channel op, one dispatch at the executor).
fn deliver_decoded(inbox: &InboxSender, mut msgs: Vec<Msg>) -> Deliver {
    match msgs.len() {
        0 => Deliver::Delivered, // decode_datagram never returns empty
        1 => {
            let msg = msgs.pop().expect("len 1");
            inbox.deliver(Incoming::Msg(msg.sender(), msg))
        }
        _ => {
            let from = msgs[0].sender();
            inbox.deliver(Incoming::Batch(from, msgs))
        }
    }
}

impl Transport for UdpTransport {
    fn send(&self, to: ProcessId, msg: &Msg) {
        if let Some(addr) = self.peers.get(&to) {
            let dgram = frame::encode_single(msg);
            let _ = self.socket.send_to(&dgram, addr);
            self.note_sent(1, 1, 1);
        }
    }

    fn broadcast(&self, from: ProcessId, msg: &Msg) {
        // Encode once, fan out through one vectored submission.
        let dgram = frame::encode_single(msg);
        let items: Vec<(&[u8], SocketAddr)> = self
            .peer_list
            .iter()
            .filter(|(pid, _)| *pid != from)
            .map(|(_, addr)| (dgram.as_slice(), *addr))
            .collect();
        if items.is_empty() {
            return;
        }
        let syscalls = self.socket.send_batch(&items);
        self.note_sent(syscalls as u64, items.len() as u64, items.len() as u64);
        self.note_batch_fill(items.len());
    }

    /// The coalesced hot path: one multi-frame datagram per destination
    /// (encoded into reusable scratch, broadcast frames encoded once
    /// per destination set), the whole fan-out submitted through
    /// [`crate::mmsg::BatchSocket::send_batch`].
    fn flush(&self, from: ProcessId, batch: &mut OutBatch) {
        if batch.items.is_empty() {
            return;
        }
        let dests: Vec<(ProcessId, SocketAddr)> = self
            .peer_list
            .iter()
            .filter(|(pid, _)| *pid != from)
            .copied()
            .collect();
        if dests.is_empty() {
            batch.items.clear();
            return;
        }
        // One reusable builder per destination.
        while batch.builders.len() < dests.len() {
            batch.builders.push(FrameBuilder::new());
        }
        for b in &mut batch.builders[..dests.len()] {
            b.reset();
        }
        let mut msgs_encoded = 0u64;
        for item in &batch.items {
            match item {
                OutItem::Broadcast(m) => {
                    for b in &mut batch.builders[..dests.len()] {
                        b.push_msg(m);
                    }
                    msgs_encoded += dests.len() as u64;
                }
                OutItem::Send(to, m) => {
                    if let Some(i) = dests.iter().position(|(pid, _)| pid == to) {
                        batch.builders[i].push_msg(m);
                        msgs_encoded += 1;
                    }
                }
            }
        }
        let items: Vec<(&[u8], SocketAddr)> = batch.builders[..dests.len()]
            .iter()
            .zip(&dests)
            .filter(|(b, _)| !b.is_empty())
            .map(|(b, (_, addr))| (b.bytes(), *addr))
            .collect();
        if !items.is_empty() {
            let syscalls = self.socket.send_batch(&items);
            self.note_sent(syscalls as u64, items.len() as u64, msgs_encoded);
            self.note_batch_fill(items.len());
        }
        batch.items.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use bytes::Bytes;
    use tw_proto::{ClockSyncMsg, HwTime, Incarnation, Ordinal, Proposal, Semantics, SyncTime};

    fn sample(from: u16) -> Msg {
        Msg::ClockSync(ClockSyncMsg::Request {
            sender: ProcessId(from),
            rid: 7,
            hw_send: HwTime(1),
        })
    }

    fn proposal(from: u16, seq: u64) -> Msg {
        Msg::Proposal(Proposal {
            sender: ProcessId(from),
            incarnation: Incarnation(0),
            seq,
            send_ts: SyncTime(seq as i64),
            hdo: Ordinal::ZERO,
            semantics: Semantics::UNORDERED_WEAK,
            payload: Bytes::from_static(b"payload"),
        })
    }

    #[test]
    fn mem_transport_send_routes_to_inbox() {
        let (tx0, rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let t = MemTransport::new(vec![tx0.into(), tx1.into()]);
        t.send(ProcessId(1), &sample(0));
        match rx1.try_recv().unwrap() {
            Incoming::Msg(from, _) => assert_eq!(from, ProcessId(0)),
            other => panic!("unexpected {other:?}"),
        }
        assert!(rx0.try_recv().is_err());
    }

    #[test]
    fn mem_transport_broadcast_skips_sender() {
        let (tx0, rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let (tx2, rx2) = unbounded();
        let t = MemTransport::new(vec![tx0.into(), tx1.into(), tx2.into()]);
        t.broadcast(ProcessId(1), &sample(1));
        assert!(rx0.try_recv().is_ok());
        assert!(rx1.try_recv().is_err());
        assert!(rx2.try_recv().is_ok());
    }

    #[test]
    fn mem_transport_tolerates_dead_receiver() {
        let (tx0, rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        drop(rx1);
        let t = MemTransport::new(vec![tx0.into(), tx1.into()]);
        t.broadcast(ProcessId(0), &sample(0)); // must not panic
        drop(rx0);
        t.send(ProcessId(1), &sample(0));
    }

    #[test]
    fn mem_transport_flush_coalesces_per_destination() {
        let (tx0, rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let (tx2, rx2) = unbounded();
        let t = MemTransport::new(vec![tx0.into(), tx1.into(), tx2.into()]);
        let mut batch = OutBatch::new();
        batch.push_broadcast(proposal(0, 1));
        batch.push_broadcast(proposal(0, 2));
        batch.push_send(ProcessId(1), sample(0));
        t.flush(ProcessId(0), &mut batch);
        assert!(batch.is_empty(), "flush drains the batch");
        assert!(rx0.try_recv().is_err(), "nothing loops back to sender");
        // Destination 1: one Batch of [p1, p2, clock-sync], in order.
        match rx1.try_recv().unwrap() {
            Incoming::Batch(from, msgs) => {
                assert_eq!(from, ProcessId(0));
                assert_eq!(msgs.len(), 3);
                assert!(matches!(&msgs[0], Msg::Proposal(p) if p.seq == 1));
                assert!(matches!(&msgs[1], Msg::Proposal(p) if p.seq == 2));
                assert!(matches!(&msgs[2], Msg::ClockSync(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(rx1.try_recv().is_err(), "exactly one channel op");
        // Destination 2: only the broadcasts.
        match rx2.try_recv().unwrap() {
            Incoming::Batch(from, msgs) => {
                assert_eq!(from, ProcessId(0));
                assert_eq!(msgs.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mem_transport_flush_single_message_stays_msg() {
        let (tx0, _rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let t = MemTransport::new(vec![tx0.into(), tx1.into()]);
        let mut batch = OutBatch::new();
        batch.push_send(ProcessId(1), sample(0));
        t.flush(ProcessId(0), &mut batch);
        assert!(matches!(rx1.try_recv().unwrap(), Incoming::Msg(..)));
    }

    #[test]
    fn default_flush_decomposes_per_message() {
        /// A transport that records call granularity (the chaos
        /// transports depend on per-message decomposition for their
        /// per-message fault fates).
        struct Recorder(std::sync::Mutex<Vec<&'static str>>);
        impl Transport for Recorder {
            fn send(&self, _to: ProcessId, _msg: &Msg) {
                self.0.lock().unwrap().push("send");
            }
            fn broadcast(&self, _from: ProcessId, _msg: &Msg) {
                self.0.lock().unwrap().push("broadcast");
            }
        }
        let t = Recorder(std::sync::Mutex::new(Vec::new()));
        let mut batch = OutBatch::new();
        batch.push_broadcast(proposal(0, 1));
        batch.push_send(ProcessId(1), sample(0));
        batch.push_broadcast(proposal(0, 2));
        t.flush(ProcessId(0), &mut batch);
        assert!(batch.is_empty());
        assert_eq!(
            *t.0.lock().unwrap(),
            vec!["broadcast", "send", "broadcast"],
            "default flush preserves order and per-message granularity"
        );
    }

    #[test]
    fn bounded_inbox_sheds_and_counts_overflow() {
        let dropped = Counter::default();
        let (tx, rx) = node_inbox(2, Some(dropped.clone()));
        let mesh = MemTransport::new(vec![
            InboxSender::new(
                crossbeam::channel::unbounded().0, // rank 0 unused
                None,
            ),
            tx,
        ]);
        for _ in 0..5 {
            mesh.send(ProcessId(1), &sample(0));
        }
        assert_eq!(rx.try_iter().count(), 2, "capacity bounds the queue");
        assert_eq!(dropped.get(), 3, "overflow is shed and counted");
    }

    #[test]
    fn inbox_sender_reports_closure() {
        let (tx, rx) = node_inbox(4, None);
        drop(rx);
        assert_eq!(
            tx.deliver(Incoming::Msg(ProcessId(0), sample(0))),
            Deliver::Closed
        );
    }

    #[test]
    fn recv_error_classification_only_exits_never() {
        use std::io::ErrorKind::*;
        assert_eq!(classify_recv_error(WouldBlock), RecvErrorAction::Poll);
        assert_eq!(classify_recv_error(TimedOut), RecvErrorAction::Poll);
        // The ICMP port-unreachable case that used to kill the loop.
        assert_eq!(classify_recv_error(ConnectionReset), RecvErrorAction::Retry);
        assert_eq!(classify_recv_error(Interrupted), RecvErrorAction::Retry);
        assert_eq!(classify_recv_error(Other), RecvErrorAction::Retry);
    }

    fn udp_pair() -> (Arc<UdpTransport>, Arc<UdpTransport>) {
        let any: SocketAddr = "127.0.0.1:0".parse().unwrap();
        let tmp_a = UdpSocket::bind(any).unwrap();
        let tmp_b = UdpSocket::bind(any).unwrap();
        let addr_a = tmp_a.local_addr().unwrap();
        let addr_b = tmp_b.local_addr().unwrap();
        drop(tmp_a);
        drop(tmp_b);
        let peers: HashMap<ProcessId, SocketAddr> =
            [(ProcessId(0), addr_a), (ProcessId(1), addr_b)].into();
        let ta = UdpTransport::bind(ProcessId(0), addr_a, peers.clone()).unwrap();
        let tb = UdpTransport::bind(ProcessId(1), addr_b, peers).unwrap();
        (ta, tb)
    }

    #[test]
    fn udp_transport_round_trip() {
        let (ta, tb) = udp_pair();
        let (tx, rx) = unbounded();
        let _h = tb.spawn_receiver(tx.into(), None);
        ta.send(ProcessId(1), &sample(0));
        match rx.recv_timeout(std::time::Duration::from_secs(2)).unwrap() {
            Incoming::Msg(from, msg) => {
                assert_eq!(from, ProcessId(0));
                assert_eq!(msg, sample(0));
            }
            other => panic!("unexpected {other:?}"),
        }
        let stats = ta.wire_stats();
        assert_eq!(stats.msgs_sent, 1);
        assert_eq!(stats.datagrams_sent, 1);
    }

    #[test]
    fn udp_flush_coalesces_into_one_datagram_per_destination() {
        let (ta, tb) = udp_pair();
        let (tx, rx) = unbounded();
        let _h = tb.spawn_receiver(tx.into(), None);
        let mut batch = OutBatch::new();
        for seq in 1..=4 {
            batch.push_broadcast(proposal(0, seq));
        }
        batch.push_send(ProcessId(1), sample(0));
        ta.flush(ProcessId(0), &mut batch);
        assert!(batch.is_empty());
        match rx.recv_timeout(std::time::Duration::from_secs(2)).unwrap() {
            Incoming::Batch(from, msgs) => {
                assert_eq!(from, ProcessId(0));
                assert_eq!(msgs.len(), 5, "whole dispatch in one datagram");
                for (i, m) in msgs[..4].iter().enumerate() {
                    assert!(matches!(m, Msg::Proposal(p) if p.seq == i as u64 + 1));
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        let stats = ta.wire_stats();
        assert_eq!(stats.datagrams_sent, 1, "one destination, one datagram");
        assert_eq!(stats.msgs_sent, 5);
        assert_eq!(stats.send_syscalls, 1);
        // Receiver-side accounting.
        let rstats = tb.wire_stats();
        assert_eq!(rstats.datagrams_recv, 1);
        assert_eq!(rstats.msgs_recv, 5);
    }

    #[test]
    fn udp_receiver_drops_unknown_version_and_counts_it() {
        let (ta, tb) = udp_pair();
        let (tx, rx) = unbounded();
        let _h = tb.spawn_receiver(tx.into(), None);
        // A legacy v1-encoded message: leading tag byte, not a version
        // byte. The receiver must reject it (explicit version bump, no
        // silent fallback) and count the drop.
        let v1 = tw_proto::Encode::to_bytes(&sample(0));
        let addr = tb.socket.local_addr().unwrap();
        ta.socket.send_to(&v1, addr).unwrap();
        // Then a valid v2 datagram to prove the loop survived.
        ta.send(ProcessId(1), &sample(0));
        match rx.recv_timeout(std::time::Duration::from_secs(2)).unwrap() {
            Incoming::Msg(_, msg) => assert_eq!(msg, sample(0)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(tb.wire_stats().decode_errors, 1);
        assert_eq!(tb.wire_stats().datagrams_recv, 1);
    }
}
