//! Datagram transports for runtime nodes.
//!
//! The protocol assumes an unreliable, unordered datagram service. Both
//! transports here deliver [`Msg`] values to a node's inbox channel:
//!
//! * [`MemTransport`] — a crossbeam channel mesh inside one process.
//!   Reliable and fast; the timed-asynchronous failure modes are absent,
//!   which is fine: the protocol only *tolerates* them.
//! * [`UdpTransport`] — real UDP sockets on localhost (or any address
//!   map), using the binary wire codec. Genuinely lossy under load,
//!   exactly the substrate the paper deployed on.
//!
//! Node inboxes are **bounded**: when a node cannot keep up, excess
//! datagrams are shed (the datagram model permits omission) and counted
//! in `tw_inbox_dropped_total`, so overload degrades gracefully and
//! observably instead of growing an unbounded queue.

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use std::collections::HashMap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;
use tw_obs::Counter;
use tw_proto::{Decode, Encode, Msg, ProcessId};

/// A way for one node to put datagrams on the wire.
pub trait Transport: Send + Sync + 'static {
    /// Send to one team member (best effort).
    fn send(&self, to: ProcessId, msg: &Msg);

    /// Broadcast to every other team member (best effort).
    fn broadcast(&self, from: ProcessId, msg: &Msg);
}

/// What lands in a node's inbox.
#[derive(Debug, Clone)]
pub enum Incoming {
    /// A datagram from another node.
    Msg(ProcessId, Msg),
}

/// What became of a datagram handed to an inbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deliver {
    /// Queued for the node.
    Delivered,
    /// Inbox full — shed (an omission; counted when a counter is
    /// attached).
    Shed,
    /// The node is gone; datagrams to crashed processes vanish.
    Closed,
}

/// The sending half of a node inbox: a channel plus the shed counter.
/// Never blocks — a full inbox sheds the datagram, which the protocol
/// treats exactly like network loss.
#[derive(Clone)]
pub struct InboxSender {
    tx: Sender<Incoming>,
    dropped: Option<Counter>,
}

impl InboxSender {
    /// Wrap a channel sender; `dropped` counts shed datagrams.
    pub fn new(tx: Sender<Incoming>, dropped: Option<Counter>) -> Self {
        InboxSender { tx, dropped }
    }

    /// Offer one datagram to the node.
    pub fn deliver(&self, inc: Incoming) -> Deliver {
        match self.tx.try_send(inc) {
            Ok(()) => Deliver::Delivered,
            Err(TrySendError::Full(_)) => {
                if let Some(c) = &self.dropped {
                    c.inc();
                }
                Deliver::Shed
            }
            Err(TrySendError::Disconnected(_)) => Deliver::Closed,
        }
    }
}

impl From<Sender<Incoming>> for InboxSender {
    fn from(tx: Sender<Incoming>) -> Self {
        InboxSender::new(tx, None)
    }
}

/// Build a bounded node inbox that sheds on overflow; `dropped` is
/// bumped per shed datagram (wire it to `tw_inbox_dropped_total`).
pub fn node_inbox(capacity: usize, dropped: Option<Counter>) -> (InboxSender, Receiver<Incoming>) {
    let (tx, rx) = bounded(capacity.max(1));
    (InboxSender::new(tx, dropped), rx)
}

/// In-process channel mesh: node `i`'s sender delivers into node `i`'s
/// inbox channel.
pub struct MemTransport {
    inboxes: Vec<InboxSender>,
}

impl MemTransport {
    /// Build a mesh over the given inbox senders (index = rank).
    pub fn new(inboxes: Vec<InboxSender>) -> Arc<Self> {
        Arc::new(MemTransport { inboxes })
    }

    /// Team size.
    pub fn len(&self) -> usize {
        self.inboxes.len()
    }

    /// True when the mesh is empty.
    pub fn is_empty(&self) -> bool {
        self.inboxes.is_empty()
    }
}

impl Transport for MemTransport {
    fn send(&self, to: ProcessId, msg: &Msg) {
        if let Some(tx) = self.inboxes.get(to.rank()) {
            // Shed and closed inboxes both read as datagram loss.
            let _ = tx.deliver(Incoming::Msg(msg.sender(), msg.clone()));
        }
    }

    fn broadcast(&self, from: ProcessId, msg: &Msg) {
        for (rank, tx) in self.inboxes.iter().enumerate() {
            if rank != from.rank() {
                let _ = tx.deliver(Incoming::Msg(from, msg.clone()));
            }
        }
    }
}

/// What the UDP receive loop should do about a socket error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RecvErrorAction {
    /// Expected poll-timeout wakeup: loop again, reset any backoff.
    Poll,
    /// Transient fault (e.g. an ICMP-induced `ConnectionReset` on
    /// Windows/Linux, `Interrupted`, resource pressure): count it as an
    /// omission and retry after a bounded backoff. A datagram service
    /// has no connection to lose, so no socket error here is fatal.
    Retry,
}

/// Classify a `recv_from` error. Kept pure so the policy is testable
/// without a socket.
pub(crate) fn classify_recv_error(kind: std::io::ErrorKind) -> RecvErrorAction {
    match kind {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => RecvErrorAction::Poll,
        _ => RecvErrorAction::Retry,
    }
}

/// Real UDP datagrams with the binary wire codec.
pub struct UdpTransport {
    socket: UdpSocket,
    peers: HashMap<ProcessId, SocketAddr>,
    me: ProcessId,
    stop: std::sync::atomic::AtomicBool,
}

impl UdpTransport {
    /// Bind `me`'s socket and remember the peer address map.
    pub fn bind(
        me: ProcessId,
        addr: SocketAddr,
        peers: HashMap<ProcessId, SocketAddr>,
    ) -> std::io::Result<Arc<Self>> {
        let socket = UdpSocket::bind(addr)?;
        Ok(Arc::new(UdpTransport {
            socket,
            peers,
            me,
            stop: std::sync::atomic::AtomicBool::new(false),
        }))
    }

    /// Ask the receive loop to exit at its next poll.
    pub fn shutdown(&self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
    }

    /// Spawn the receive loop: decodes datagrams and forwards them into
    /// `inbox` until shutdown is requested or the inbox closes. Socket
    /// errors are treated as omissions — counted into `recv_errors`
    /// (wire it to `tw_udp_recv_errors_total`) and retried with a
    /// bounded backoff — never as a reason to abandon the socket.
    pub fn spawn_receiver(
        self: &Arc<Self>,
        inbox: InboxSender,
        recv_errors: Option<Counter>,
    ) -> std::thread::JoinHandle<()> {
        let me = self.clone();
        std::thread::Builder::new()
            .name(format!("udp-rx-{}", me.me))
            .spawn(move || {
                let mut buf = vec![0u8; 64 * 1024];
                // A read timeout lets the thread notice inbox closure.
                let _ = me
                    .socket
                    .set_read_timeout(Some(std::time::Duration::from_millis(200)));
                let min_backoff = std::time::Duration::from_millis(1);
                let max_backoff = std::time::Duration::from_millis(100);
                let mut backoff = min_backoff;
                loop {
                    if me.stop.load(std::sync::atomic::Ordering::Relaxed) {
                        return;
                    }
                    match me.socket.recv_from(&mut buf) {
                        Ok((len, _src)) => {
                            backoff = min_backoff;
                            if let Ok(msg) = Msg::from_bytes(&buf[..len]) {
                                let from = msg.sender();
                                if inbox.deliver(Incoming::Msg(from, msg)) == Deliver::Closed {
                                    return;
                                }
                            }
                            // Undecodable datagrams are dropped — the
                            // model's omission failure. So are shed ones
                            // (inbox full).
                        }
                        Err(e) => match classify_recv_error(e.kind()) {
                            RecvErrorAction::Poll => backoff = min_backoff,
                            RecvErrorAction::Retry => {
                                if let Some(c) = &recv_errors {
                                    c.inc();
                                }
                                std::thread::sleep(backoff);
                                backoff = (backoff * 2).min(max_backoff);
                            }
                        },
                    }
                }
            })
            .expect("spawn udp receiver")
    }
}

impl Transport for UdpTransport {
    fn send(&self, to: ProcessId, msg: &Msg) {
        if let Some(addr) = self.peers.get(&to) {
            let _ = self.socket.send_to(&msg.to_bytes(), addr);
        }
    }

    fn broadcast(&self, from: ProcessId, msg: &Msg) {
        let bytes = msg.to_bytes();
        for (pid, addr) in &self.peers {
            if *pid != from {
                let _ = self.socket.send_to(&bytes, addr);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use tw_proto::{ClockSyncMsg, HwTime};

    fn sample(from: u16) -> Msg {
        Msg::ClockSync(ClockSyncMsg::Request {
            sender: ProcessId(from),
            rid: 7,
            hw_send: HwTime(1),
        })
    }

    #[test]
    fn mem_transport_send_routes_to_inbox() {
        let (tx0, rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let t = MemTransport::new(vec![tx0.into(), tx1.into()]);
        t.send(ProcessId(1), &sample(0));
        match rx1.try_recv().unwrap() {
            Incoming::Msg(from, _) => assert_eq!(from, ProcessId(0)),
        }
        assert!(rx0.try_recv().is_err());
    }

    #[test]
    fn mem_transport_broadcast_skips_sender() {
        let (tx0, rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let (tx2, rx2) = unbounded();
        let t = MemTransport::new(vec![tx0.into(), tx1.into(), tx2.into()]);
        t.broadcast(ProcessId(1), &sample(1));
        assert!(rx0.try_recv().is_ok());
        assert!(rx1.try_recv().is_err());
        assert!(rx2.try_recv().is_ok());
    }

    #[test]
    fn mem_transport_tolerates_dead_receiver() {
        let (tx0, rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        drop(rx1);
        let t = MemTransport::new(vec![tx0.into(), tx1.into()]);
        t.broadcast(ProcessId(0), &sample(0)); // must not panic
        drop(rx0);
        t.send(ProcessId(1), &sample(0));
    }

    #[test]
    fn bounded_inbox_sheds_and_counts_overflow() {
        let dropped = Counter::default();
        let (tx, rx) = node_inbox(2, Some(dropped.clone()));
        let mesh = MemTransport::new(vec![InboxSender::new(
            crossbeam::channel::unbounded().0, // rank 0 unused
            None,
        ), tx]);
        for _ in 0..5 {
            mesh.send(ProcessId(1), &sample(0));
        }
        assert_eq!(rx.try_iter().count(), 2, "capacity bounds the queue");
        assert_eq!(dropped.get(), 3, "overflow is shed and counted");
    }

    #[test]
    fn inbox_sender_reports_closure() {
        let (tx, rx) = node_inbox(4, None);
        drop(rx);
        assert_eq!(
            tx.deliver(Incoming::Msg(ProcessId(0), sample(0))),
            Deliver::Closed
        );
    }

    #[test]
    fn recv_error_classification_only_exits_never() {
        use std::io::ErrorKind::*;
        assert_eq!(classify_recv_error(WouldBlock), RecvErrorAction::Poll);
        assert_eq!(classify_recv_error(TimedOut), RecvErrorAction::Poll);
        // The ICMP port-unreachable case that used to kill the loop.
        assert_eq!(classify_recv_error(ConnectionReset), RecvErrorAction::Retry);
        assert_eq!(classify_recv_error(Interrupted), RecvErrorAction::Retry);
        assert_eq!(classify_recv_error(Other), RecvErrorAction::Retry);
    }

    #[test]
    fn udp_transport_round_trip() {
        let a_addr: SocketAddr = "127.0.0.1:0".parse().unwrap();
        // Bind two sockets on ephemeral ports, then exchange.
        let tmp_a = UdpSocket::bind(a_addr).unwrap();
        let tmp_b = UdpSocket::bind(a_addr).unwrap();
        let addr_a = tmp_a.local_addr().unwrap();
        let addr_b = tmp_b.local_addr().unwrap();
        drop(tmp_a);
        drop(tmp_b);
        let peers: HashMap<ProcessId, SocketAddr> =
            [(ProcessId(0), addr_a), (ProcessId(1), addr_b)].into();
        let ta = UdpTransport::bind(ProcessId(0), addr_a, peers.clone()).unwrap();
        let tb = UdpTransport::bind(ProcessId(1), addr_b, peers).unwrap();
        let (tx, rx) = unbounded();
        let _h = tb.spawn_receiver(tx.into(), None);
        ta.send(ProcessId(1), &sample(0));
        match rx.recv_timeout(std::time::Duration::from_secs(2)).unwrap() {
            Incoming::Msg(from, msg) => {
                assert_eq!(from, ProcessId(0));
                assert_eq!(msg, sample(0));
            }
        }
    }
}
