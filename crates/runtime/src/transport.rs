//! Datagram transports for runtime nodes.
//!
//! The protocol assumes an unreliable, unordered datagram service. Both
//! transports here deliver [`Msg`] values to a node's inbox channel:
//!
//! * [`MemTransport`] — a crossbeam channel mesh inside one process.
//!   Reliable and fast; the timed-asynchronous failure modes are absent,
//!   which is fine: the protocol only *tolerates* them.
//! * [`UdpTransport`] — real UDP sockets on localhost (or any address
//!   map), using the binary wire codec. Genuinely lossy under load,
//!   exactly the substrate the paper deployed on.

use crossbeam::channel::Sender;
use std::collections::HashMap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;
use tw_proto::{Decode, Encode, Msg, ProcessId};

/// A way for one node to put datagrams on the wire.
pub trait Transport: Send + Sync + 'static {
    /// Send to one team member (best effort).
    fn send(&self, to: ProcessId, msg: &Msg);

    /// Broadcast to every other team member (best effort).
    fn broadcast(&self, from: ProcessId, msg: &Msg);
}

/// What lands in a node's inbox.
#[derive(Debug, Clone)]
pub enum Incoming {
    /// A datagram from another node.
    Msg(ProcessId, Msg),
}

/// In-process channel mesh: node `i`'s sender delivers into node `i`'s
/// inbox channel.
pub struct MemTransport {
    inboxes: Vec<Sender<Incoming>>,
}

impl MemTransport {
    /// Build a mesh over the given inbox senders (index = rank).
    pub fn new(inboxes: Vec<Sender<Incoming>>) -> Arc<Self> {
        Arc::new(MemTransport { inboxes })
    }

    /// Team size.
    pub fn len(&self) -> usize {
        self.inboxes.len()
    }

    /// True when the mesh is empty.
    pub fn is_empty(&self) -> bool {
        self.inboxes.is_empty()
    }
}

impl Transport for MemTransport {
    fn send(&self, to: ProcessId, msg: &Msg) {
        if let Some(tx) = self.inboxes.get(to.rank()) {
            // The receiver may have shut down; that is a crash, and
            // datagrams to crashed processes vanish.
            let _ = tx.send(Incoming::Msg(msg.sender(), msg.clone()));
        }
    }

    fn broadcast(&self, from: ProcessId, msg: &Msg) {
        for (rank, tx) in self.inboxes.iter().enumerate() {
            if rank != from.rank() {
                let _ = tx.send(Incoming::Msg(from, msg.clone()));
            }
        }
    }
}

/// Real UDP datagrams with the binary wire codec.
pub struct UdpTransport {
    socket: UdpSocket,
    peers: HashMap<ProcessId, SocketAddr>,
    me: ProcessId,
    stop: std::sync::atomic::AtomicBool,
}

impl UdpTransport {
    /// Bind `me`'s socket and remember the peer address map.
    pub fn bind(
        me: ProcessId,
        addr: SocketAddr,
        peers: HashMap<ProcessId, SocketAddr>,
    ) -> std::io::Result<Arc<Self>> {
        let socket = UdpSocket::bind(addr)?;
        Ok(Arc::new(UdpTransport {
            socket,
            peers,
            me,
            stop: std::sync::atomic::AtomicBool::new(false),
        }))
    }

    /// Ask the receive loop to exit at its next poll.
    pub fn shutdown(&self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
    }

    /// Spawn the receive loop: decodes datagrams and forwards them into
    /// `inbox` until the socket errors or the inbox closes.
    pub fn spawn_receiver(
        self: &Arc<Self>,
        inbox: Sender<Incoming>,
    ) -> std::thread::JoinHandle<()> {
        let me = self.clone();
        std::thread::Builder::new()
            .name(format!("udp-rx-{}", me.me))
            .spawn(move || {
                let mut buf = vec![0u8; 64 * 1024];
                // A read timeout lets the thread notice inbox closure.
                let _ = me
                    .socket
                    .set_read_timeout(Some(std::time::Duration::from_millis(200)));
                loop {
                    if me.stop.load(std::sync::atomic::Ordering::Relaxed) {
                        return;
                    }
                    match me.socket.recv_from(&mut buf) {
                        Ok((len, _src)) => {
                            if let Ok(msg) = Msg::from_bytes(&buf[..len]) {
                                let from = msg.sender();
                                if inbox.send(Incoming::Msg(from, msg)).is_err() {
                                    return;
                                }
                            }
                            // Undecodable datagrams are dropped — the
                            // model's omission failure.
                        }
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut => {}
                        Err(_) => return,
                    }
                }
            })
            .expect("spawn udp receiver")
    }
}

impl Transport for UdpTransport {
    fn send(&self, to: ProcessId, msg: &Msg) {
        if let Some(addr) = self.peers.get(&to) {
            let _ = self.socket.send_to(&msg.to_bytes(), addr);
        }
    }

    fn broadcast(&self, from: ProcessId, msg: &Msg) {
        let bytes = msg.to_bytes();
        for (pid, addr) in &self.peers {
            if *pid != from {
                let _ = self.socket.send_to(&bytes, addr);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use tw_proto::{ClockSyncMsg, HwTime};

    fn sample(from: u16) -> Msg {
        Msg::ClockSync(ClockSyncMsg::Request {
            sender: ProcessId(from),
            rid: 7,
            hw_send: HwTime(1),
        })
    }

    #[test]
    fn mem_transport_send_routes_to_inbox() {
        let (tx0, rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let t = MemTransport::new(vec![tx0, tx1]);
        t.send(ProcessId(1), &sample(0));
        match rx1.try_recv().unwrap() {
            Incoming::Msg(from, _) => assert_eq!(from, ProcessId(0)),
        }
        assert!(rx0.try_recv().is_err());
    }

    #[test]
    fn mem_transport_broadcast_skips_sender() {
        let (tx0, rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let (tx2, rx2) = unbounded();
        let t = MemTransport::new(vec![tx0, tx1, tx2]);
        t.broadcast(ProcessId(1), &sample(1));
        assert!(rx0.try_recv().is_ok());
        assert!(rx1.try_recv().is_err());
        assert!(rx2.try_recv().is_ok());
    }

    #[test]
    fn mem_transport_tolerates_dead_receiver() {
        let (tx0, rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        drop(rx1);
        let t = MemTransport::new(vec![tx0, tx1]);
        t.broadcast(ProcessId(0), &sample(0)); // must not panic
        drop(rx0);
        t.send(ProcessId(1), &sample(0));
    }

    #[test]
    fn udp_transport_round_trip() {
        let a_addr: SocketAddr = "127.0.0.1:0".parse().unwrap();
        // Bind two sockets on ephemeral ports, then exchange.
        let tmp_a = UdpSocket::bind(a_addr).unwrap();
        let tmp_b = UdpSocket::bind(a_addr).unwrap();
        let addr_a = tmp_a.local_addr().unwrap();
        let addr_b = tmp_b.local_addr().unwrap();
        drop(tmp_a);
        drop(tmp_b);
        let peers: HashMap<ProcessId, SocketAddr> =
            [(ProcessId(0), addr_a), (ProcessId(1), addr_b)].into();
        let ta = UdpTransport::bind(ProcessId(0), addr_a, peers.clone()).unwrap();
        let tb = UdpTransport::bind(ProcessId(1), addr_b, peers).unwrap();
        let (tx, rx) = unbounded();
        let _h = tb.spawn_receiver(tx);
        ta.send(ProcessId(1), &sample(0));
        match rx.recv_timeout(std::time::Duration::from_secs(2)).unwrap() {
            Incoming::Msg(from, msg) => {
                assert_eq!(from, ProcessId(0));
                assert_eq!(msg, sample(0));
            }
        }
    }
}
