//! Per-node metrics, backed by the shared [`tw_obs::Registry`].
//!
//! Every spawned [`crate::Node`] owns one [`NodeMetrics`]. The executors
//! feed it on the hot path (sends by message kind, deliveries, view
//! installations, event-dispatch latency) and clients read it through
//! [`crate::Node::metrics`] / [`crate::Node::metrics_snapshot`] — the
//! runtime analogue of the simulator's `Stats` ledger, sharing counter
//! names (`sends.<kind>`, …) so the same assertions work in both worlds.

use std::sync::Arc;
use std::time::Instant;
use tw_obs::{Counter, Gauge, Histogram, Registry, Snapshot, LATENCY_BOUNDS_US};
use tw_proto::MsgKind;

/// Registry-backed counters for one running node.
///
/// Handles are pre-registered at construction so the hot path is a
/// linear scan over eight kinds plus an atomic increment — no map
/// lookups, no allocation, no lock (the registry mutex is only taken
/// when registering or snapshotting).
///
/// Beyond the protocol counters, this carries the runtime's
/// *self-observation* signals — the raw inputs a Lifeguard-style
/// adaptive failure detector (ROADMAP item 3) needs to judge its own
/// node's health: how late protocol ticks fire (`tick_lag_us`), how far
/// past their deadline clock resyncs run (`deadline_overrun_us`), and
/// the standing backlogs (inbox depth, recorder buffer occupancy, mmsg
/// batch fill) as gauges.
#[derive(Debug)]
pub struct NodeMetrics {
    registry: Arc<Registry>,
    sends: Vec<(MsgKind, Counter)>,
    deliveries: Counter,
    views: Counter,
    dispatch_latency: Histogram,
    tick_lag: Histogram,
    deadline_overrun: Histogram,
    inbox_depth: Gauge,
    recorder_buffered: Gauge,
    batch_fill: Gauge,
    inbox_dropped: Counter,
    udp_recv_errors: Counter,
}

impl NodeMetrics {
    /// Fresh metrics over a private registry.
    pub fn new() -> Arc<Self> {
        let registry = Arc::new(Registry::new());
        let sends = MsgKind::ALL
            .iter()
            .map(|k| (*k, registry.counter(&format!("sends.{}", k.as_str()))))
            .collect();
        let deliveries = registry.counter("deliveries");
        let views = registry.counter("views_installed");
        let dispatch_latency = registry.histogram("dispatch_latency_us", &LATENCY_BOUNDS_US);
        let tick_lag = registry.histogram("tick_lag_us", &LATENCY_BOUNDS_US);
        let deadline_overrun = registry.histogram("deadline_overrun_us", &LATENCY_BOUNDS_US);
        let inbox_depth = registry.gauge("tw_inbox_depth");
        let recorder_buffered = registry.gauge("tw_recorder_buffered");
        let batch_fill = registry.gauge("tw_mmsg_batch_fill");
        let inbox_dropped = registry.counter("tw_inbox_dropped_total");
        let udp_recv_errors = registry.counter("tw_udp_recv_errors_total");
        Arc::new(Self {
            registry,
            sends,
            deliveries,
            views,
            dispatch_latency,
            tick_lag,
            deadline_overrun,
            inbox_depth,
            recorder_buffered,
            batch_fill,
            inbox_dropped,
            udp_recv_errors,
        })
    }

    /// Handle on the `tw_inbox_dropped_total` counter: datagrams shed
    /// because the node's bounded inbox was full.
    pub fn inbox_dropped(&self) -> Counter {
        self.inbox_dropped.clone()
    }

    /// Handle on the `tw_udp_recv_errors_total` counter: transient UDP
    /// socket errors absorbed as omissions by the receive loop.
    pub fn udp_recv_errors(&self) -> Counter {
        self.udp_recv_errors.clone()
    }

    /// Count one send/broadcast operation of `kind`.
    pub fn on_send(&self, kind: MsgKind) {
        if let Some((_, c)) = self.sends.iter().find(|(k, _)| *k == kind) {
            c.inc();
        }
    }

    /// Count one delivery handed to the client.
    pub fn on_delivery(&self) {
        self.deliveries.inc();
    }

    /// Count one view installation.
    pub fn on_view(&self) {
        self.views.inc();
    }

    /// Record the latency of one event dispatch (handler entry to actions
    /// applied), measured from `start`.
    pub fn on_dispatch(&self, start: Instant) {
        let us = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.dispatch_latency.record(us);
    }

    /// Record how late a protocol tick fired, in microseconds past its
    /// scheduled deadline (`tick_lag_us`).
    pub fn on_tick_lag(&self, us: u64) {
        self.tick_lag.record(us);
    }

    /// Record how far past its deadline a clock-resync pass ran, in
    /// microseconds (`deadline_overrun_us`).
    pub fn on_deadline_overrun(&self, us: u64) {
        self.deadline_overrun.record(us);
    }

    /// Handle on the `tw_inbox_depth` gauge: messages queued in the
    /// node's bounded inbox at the executor's last look.
    pub fn inbox_depth(&self) -> Gauge {
        self.inbox_depth.clone()
    }

    /// Handle on the `tw_recorder_buffered` gauge: trace events held in
    /// the flight recorder's in-memory buffer awaiting a spill.
    pub fn recorder_buffered(&self) -> Gauge {
        self.recorder_buffered.clone()
    }

    /// Handle on the `tw_mmsg_batch_fill` gauge: datagrams coalesced
    /// into the most recent vectored UDP send.
    pub fn batch_fill(&self) -> Gauge {
        self.batch_fill.clone()
    }

    /// The registry behind the counters.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The registry as a shareable handle, for wiring into an
    /// [`tw_obs::OpsServer`]'s scrape sources.
    pub fn shared_registry(&self) -> Arc<Registry> {
        self.registry.clone()
    }

    /// A point-in-time copy of every counter and histogram.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sends_are_counted_per_kind() {
        let m = NodeMetrics::new();
        m.on_send(MsgKind::Decision);
        m.on_send(MsgKind::Decision);
        m.on_send(MsgKind::Join);
        let s = m.snapshot();
        assert_eq!(s.counter("sends.decision"), 2);
        assert_eq!(s.counter("sends.join"), 1);
        assert_eq!(s.counter("sends.no-decision"), 0);
    }

    #[test]
    fn dispatch_latency_lands_in_the_histogram() {
        let m = NodeMetrics::new();
        m.on_dispatch(Instant::now());
        let s = m.snapshot();
        let h = s.histograms.get("dispatch_latency_us").expect("histogram");
        assert_eq!(h.count, 1);
    }

    #[test]
    fn overload_and_socket_error_counters_are_registered() {
        let m = NodeMetrics::new();
        m.inbox_dropped().add(3);
        m.udp_recv_errors().inc();
        let s = m.snapshot();
        assert_eq!(s.counter("tw_inbox_dropped_total"), 3);
        assert_eq!(s.counter("tw_udp_recv_errors_total"), 1);
    }

    #[test]
    fn self_observation_signals_are_registered() {
        let m = NodeMetrics::new();
        m.on_tick_lag(150);
        m.on_deadline_overrun(40);
        m.inbox_depth().set(7);
        m.recorder_buffered().set(12);
        m.batch_fill().set(3);
        let s = m.snapshot();
        assert_eq!(s.histograms.get("tick_lag_us").expect("tick lag").count, 1);
        assert_eq!(
            s.histograms
                .get("deadline_overrun_us")
                .expect("overrun")
                .count,
            1
        );
        assert_eq!(s.gauge("tw_inbox_depth"), 7);
        assert_eq!(s.gauge("tw_recorder_buffered"), 12);
        assert_eq!(s.gauge("tw_mmsg_batch_fill"), 3);
    }

    #[test]
    fn deliveries_and_views_count() {
        let m = NodeMetrics::new();
        m.on_delivery();
        m.on_view();
        m.on_view();
        assert_eq!(m.registry().counter_value("deliveries"), 1);
        assert_eq!(m.registry().counter_value("views_installed"), 2);
    }
}
