//! Deterministic fault injection for real-cluster transports.
//!
//! [`FaultTransport`] wraps any [`Transport`] (the in-process mesh or
//! real UDP) and subjects every datagram to a seeded, per-link fault
//! plan: drop probability, duplication, bounded reorder, added delay,
//! byte corruption, and directional link cuts. Every injected fault maps
//! onto the paper's timed-asynchronous failure model:
//!
//! * drop / corrupt / cut — **omission** failures (a corrupted datagram
//!   is exercised through [`Msg::from_bytes`] like a real receiver
//!   would, then discarded — the harness plays the role of the UDP
//!   checksum);
//! * delay / reorder — **performance** failures (the datagram service is
//!   unordered, so reordering is just a per-message delay);
//! * duplication — legal datagram behavior the protocol must absorb.
//!
//! Determinism contract: the fate of message *n* on link *(from, to)* is
//! a pure function of `(seed, from, to, n)` — a private SplitMix64 lane
//! per message, so toggling one fault knob never shifts another knob's
//! draws, and a re-run with the same seed and same send pattern injects
//! the identical fault sequence. All knobs are switchable at runtime
//! through the shared [`ChaosNet`].
//!
//! Injected faults are emitted as [`TraceEvent::FaultInjected`] into the
//! sending node's trace sink, so flight recordings of adversarial runs
//! are self-describing.

use crate::clock::{RealClock, RuntimeClock};
use crate::transport::Transport;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use tw_obs::{ClockStamp, FaultKind, TraceEvent, Tracer};
use tw_proto::{Decode, Encode, Msg, ProcessId, SyncTime};

/// SplitMix64 — a tiny, high-quality, dependency-free PRNG. Used for
/// every chaos decision so runs are reproducible from a single seed.
#[derive(Debug, Clone)]
pub struct ChaosRng(u64);

impl ChaosRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        ChaosRng(seed)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` must be non-zero).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// True with probability `ppm / 1_000_000`.
    pub fn chance_ppm(&mut self, ppm: u32) -> bool {
        self.below(1_000_000) < ppm as u64
    }
}

/// The per-message fate lane: a fresh SplitMix64 stream keyed by
/// `(seed, from, to, seq)`, so every message's draws are independent of
/// every other message's.
fn lane(seed: u64, from: ProcessId, to: ProcessId, seq: u64) -> ChaosRng {
    let mut s = seed;
    for v in [from.0 as u64 + 1, to.0 as u64 + 1, seq + 1] {
        s = ChaosRng(s ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64();
    }
    ChaosRng(s)
}

/// Fault knobs for one directed link. Probabilities are integer
/// parts-per-million so plans hash and compare exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkPlan {
    /// Probability (ppm) that a datagram is silently dropped.
    pub drop_ppm: u32,
    /// Probability (ppm) that a datagram is delivered twice.
    pub dup_ppm: u32,
    /// Probability (ppm) that a datagram is held back so later traffic
    /// overtakes it (bounded reorder).
    pub reorder_ppm: u32,
    /// Probability (ppm) that a datagram is delayed in flight.
    pub delay_ppm: u32,
    /// Probability (ppm) that one byte of the datagram is bit-flipped;
    /// the mangled bytes are run through the real decoder and the
    /// datagram is then discarded (omission).
    pub corrupt_ppm: u32,
    /// How long a reordered datagram is held back, in milliseconds.
    pub hold_ms: u32,
    /// Added in-flight delay for a delayed datagram, in milliseconds.
    pub delay_ms: u32,
}

impl LinkPlan {
    /// A transparent plan: every datagram passes untouched.
    pub fn clean() -> Self {
        Self::default()
    }

    /// A lossy link: `drop_ppm` drops, nothing else.
    pub fn lossy(drop_ppm: u32) -> Self {
        LinkPlan {
            drop_ppm,
            ..Self::default()
        }
    }

    /// True when no fault can fire.
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }
}

/// Mutable chaos state shared by every link.
#[derive(Debug, Default)]
struct NetState {
    default_plan: LinkPlan,
    overrides: HashMap<(ProcessId, ProcessId), LinkPlan>,
    cut: HashSet<(ProcessId, ProcessId)>,
    seqs: HashMap<(ProcessId, ProcessId), u64>,
}

/// A datagram parked in the delay pump.
struct Held {
    due: Instant,
    order: u64,
    to: ProcessId,
    msg: Msg,
    inner: Arc<dyn Transport>,
}

impl PartialEq for Held {
    fn eq(&self, other: &Self) -> bool {
        self.order == other.order
    }
}
impl Eq for Held {}
impl PartialOrd for Held {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Held {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.order).cmp(&(other.due, other.order))
    }
}

#[derive(Default)]
struct PumpState {
    heap: BinaryHeap<Reverse<Held>>,
    shutdown: bool,
}

/// The delay pump: one thread per [`ChaosNet`] that releases held
/// datagrams when their deadline passes.
struct Pump {
    state: Mutex<PumpState>,
    cv: Condvar,
}

impl Pump {
    fn lock(&self) -> MutexGuard<'_, PumpState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn push(&self, held: Held) {
        self.lock().heap.push(Reverse(held));
        self.cv.notify_one();
    }

    fn run(self: &Arc<Self>) {
        let mut st = self.lock();
        loop {
            if st.shutdown {
                return;
            }
            let now = Instant::now();
            match st.heap.peek() {
                Some(Reverse(head)) if head.due <= now => {
                    let Reverse(held) = st.heap.pop().expect("peeked");
                    drop(st);
                    held.inner.send(held.to, &held.msg);
                    st = self.lock();
                }
                Some(Reverse(head)) => {
                    let wait = head.due - now;
                    st = self.cv.wait_timeout(st, wait).map(|(g, _)| g).unwrap_or_else(|e| e.into_inner().0);
                }
                None => {
                    st = self
                        .cv
                        .wait_timeout(st, Duration::from_millis(200))
                        .map(|(g, _)| g)
                        .unwrap_or_else(|e| e.into_inner().0);
                }
            }
        }
    }
}

/// The shared chaos fabric for one cluster: the seeded fault plans, the
/// directional cut matrix, the delay pump, per-fault-kind counters and
/// the common hardware clock used to stamp injected-fault events.
///
/// One `ChaosNet` is shared by every node's [`FaultTransport`]; all of
/// its knobs may be changed while the cluster runs.
pub struct ChaosNet {
    seed: u64,
    clock: RealClock,
    state: Mutex<NetState>,
    counts: [AtomicU64; FaultKind::ALL.len()],
    cut_swallowed: AtomicU64,
    held_order: AtomicU64,
    pump: Arc<Pump>,
    pump_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl ChaosNet {
    /// A fresh fabric from `seed`, with every link clean and connected.
    pub fn new(seed: u64) -> Arc<Self> {
        let pump = Arc::new(Pump {
            state: Mutex::new(PumpState::default()),
            cv: Condvar::new(),
        });
        let worker = pump.clone();
        let handle = std::thread::Builder::new()
            .name("chaos-pump".into())
            .spawn(move || worker.run())
            .expect("spawn chaos pump");
        Arc::new(ChaosNet {
            seed,
            clock: RealClock::new(),
            state: Mutex::new(NetState::default()),
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            cut_swallowed: AtomicU64::new(0),
            held_order: AtomicU64::new(0),
            pump,
            pump_thread: Mutex::new(Some(handle)),
        })
    }

    /// The seed the fabric was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fabric's hardware clock. Clones share the epoch, so every
    /// node of a chaos cluster can stamp events on one timeline.
    pub fn clock(&self) -> RealClock {
        self.clock.clone()
    }

    /// The current stamp on the fabric clock. Fault events carry a
    /// synchronized reading equal to the hardware reading: the fabric
    /// clock is the one global observer the model otherwise forbids —
    /// fine for the harness, which stands outside the protocol.
    pub fn stamp(&self) -> ClockStamp {
        let hw = self.clock.now_hw();
        ClockStamp {
            hw,
            sync: SyncTime(hw.0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, NetState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Replace the plan applied to every link without an override.
    pub fn set_default_plan(&self, plan: LinkPlan) {
        self.lock().default_plan = plan;
    }

    /// Override the plan for one directed link.
    pub fn set_link_plan(&self, from: ProcessId, to: ProcessId, plan: LinkPlan) {
        self.lock().overrides.insert((from, to), plan);
    }

    /// Drop all per-link overrides (the default plan remains).
    pub fn clear_link_plans(&self) {
        self.lock().overrides.clear();
    }

    /// Cut the directed link `from → to`: datagrams vanish silently.
    /// Returns whether the link was previously connected.
    pub fn cut(&self, from: ProcessId, to: ProcessId) -> bool {
        self.lock().cut.insert((from, to))
    }

    /// Heal the directed link `from → to`. Returns whether the link was
    /// previously cut.
    pub fn heal(&self, from: ProcessId, to: ProcessId) -> bool {
        self.lock().cut.remove(&(from, to))
    }

    /// Cut both directions between `a` and `b`.
    pub fn cut_both(&self, a: ProcessId, b: ProcessId) {
        let mut st = self.lock();
        st.cut.insert((a, b));
        st.cut.insert((b, a));
    }

    /// Partition the team into disjoint sides: every link crossing a
    /// side boundary is cut (both directions), links inside a side are
    /// healed. Returns the newly cut directed links, sorted.
    pub fn partition(&self, sides: &[Vec<ProcessId>]) -> Vec<(ProcessId, ProcessId)> {
        let mut st = self.lock();
        let before = std::mem::take(&mut st.cut);
        for (i, side_a) in sides.iter().enumerate() {
            for side_b in sides.iter().skip(i + 1) {
                for &a in side_a {
                    for &b in side_b {
                        st.cut.insert((a, b));
                        st.cut.insert((b, a));
                    }
                }
            }
        }
        let mut new: Vec<_> = st.cut.difference(&before).copied().collect();
        new.sort();
        new
    }

    /// Reconnect everything. Returns the healed directed links, sorted.
    pub fn heal_all(&self) -> Vec<(ProcessId, ProcessId)> {
        let mut healed: Vec<_> = std::mem::take(&mut self.lock().cut).into_iter().collect();
        healed.sort();
        healed
    }

    /// True when the directed link `from → to` is currently cut.
    pub fn is_cut(&self, from: ProcessId, to: ProcessId) -> bool {
        self.lock().cut.contains(&(from, to))
    }

    /// How many faults of `kind` the fabric has injected so far.
    pub fn injected(&self, kind: FaultKind) -> u64 {
        self.counts[kind as usize].load(Ordering::Relaxed)
    }

    /// Total datagrams swallowed by cut links (not traced per-message —
    /// the cut/heal events bracket the interval).
    pub fn cut_swallowed(&self) -> u64 {
        self.cut_swallowed.load(Ordering::Relaxed)
    }

    /// Count one injected fault of `kind` (also used by the controller
    /// for node-level faults so one ledger covers the whole run).
    pub fn count(&self, kind: FaultKind) {
        self.counts[kind as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the per-kind injection counters, in
    /// [`FaultKind::ALL`] order.
    pub fn injected_counts(&self) -> [u64; FaultKind::ALL.len()] {
        std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed))
    }
}

impl Drop for ChaosNet {
    fn drop(&mut self) {
        self.pump.lock().shutdown = true;
        self.pump.cv.notify_all();
        // Take the handle in its own statement: as an `if let` scrutinee
        // the guard temporary would live across the join, and the pump
        // thread's own drop path could then deadlock against us.
        let handle = self.pump_thread.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

/// A [`Transport`] wrapper that routes every datagram through the
/// shared [`ChaosNet`] fault fabric before handing it to the inner
/// transport. One wrapper per node; broadcasts are decomposed into
/// per-link sends so each link rolls its own fate.
pub struct FaultTransport {
    me: ProcessId,
    team: Vec<ProcessId>,
    inner: Arc<dyn Transport>,
    net: Arc<ChaosNet>,
    tracer: Tracer,
}

impl FaultTransport {
    /// Wrap `inner` for node `me` of `team`, injecting faults from
    /// `net` and emitting [`TraceEvent::FaultInjected`] into `tracer`.
    pub fn new(
        me: ProcessId,
        team: Vec<ProcessId>,
        inner: Arc<dyn Transport>,
        net: Arc<ChaosNet>,
        tracer: Tracer,
    ) -> Arc<Self> {
        Arc::new(FaultTransport {
            me,
            team,
            inner,
            net,
            tracer,
        })
    }

    /// The shared fabric behind this wrapper.
    pub fn net(&self) -> &Arc<ChaosNet> {
        &self.net
    }

    fn emit(&self, kind: FaultKind, target: ProcessId, arg: u32) {
        self.net.count(kind);
        let at = self.net.stamp();
        let pid = self.me;
        self.tracer.emit(|| TraceEvent::FaultInjected {
            pid,
            at,
            kind,
            target,
            arg,
        });
    }

    fn hold(&self, to: ProcessId, msg: Msg, ms: u32) {
        let order = self.net.held_order.fetch_add(1, Ordering::Relaxed);
        self.net.pump.push(Held {
            due: Instant::now() + Duration::from_millis(ms as u64),
            order,
            to,
            msg,
            inner: self.inner.clone(),
        });
    }

    /// Route one datagram `from → to` through the fault plan.
    fn send_on_link(&self, from: ProcessId, to: ProcessId, msg: &Msg) {
        let (plan, seq, cut) = {
            let mut st = self.net.lock();
            let cut = st.cut.contains(&(from, to));
            let plan = *st.overrides.get(&(from, to)).unwrap_or(&st.default_plan);
            let seq = st.seqs.entry((from, to)).or_insert(0);
            let n = *seq;
            *seq += 1;
            (plan, n, cut)
        };
        if cut {
            self.net.cut_swallowed.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if plan.is_clean() {
            self.inner.send(to, msg);
            return;
        }
        // Fixed draw order, one draw per knob, so enabling one fault
        // never changes another fault's pattern.
        let mut rng = lane(self.net.seed, from, to, seq);
        let corrupt = rng.chance_ppm(plan.corrupt_ppm);
        let dropped = rng.chance_ppm(plan.drop_ppm);
        let dup = rng.chance_ppm(plan.dup_ppm);
        let reorder = rng.chance_ppm(plan.reorder_ppm);
        let delay = rng.chance_ppm(plan.delay_ppm);

        if corrupt {
            // Flip one deterministic bit and push the result through the
            // real decoder, exactly as a receiver would — it must not
            // panic. Then discard: corruption is an omission (the
            // harness plays the role of the UDP checksum).
            let mut bytes = msg.to_bytes().to_vec();
            if !bytes.is_empty() {
                let at_byte = rng.below(bytes.len() as u64) as usize;
                let bit = rng.below(8) as u8;
                bytes[at_byte] ^= 1 << bit;
                let _ = Msg::from_bytes(&bytes);
                self.emit(FaultKind::Corrupt, to, at_byte as u32);
                return;
            }
        }
        if dropped {
            self.emit(FaultKind::Drop, to, 0);
            return;
        }
        if reorder && plan.hold_ms > 0 {
            self.emit(FaultKind::Reorder, to, plan.hold_ms);
            self.hold(to, msg.clone(), plan.hold_ms);
            return;
        }
        if delay && plan.delay_ms > 0 {
            self.emit(FaultKind::Delay, to, plan.delay_ms);
            self.hold(to, msg.clone(), plan.delay_ms);
            if dup {
                self.emit(FaultKind::Duplicate, to, 0);
                self.hold(to, msg.clone(), plan.delay_ms);
            }
            return;
        }
        self.inner.send(to, msg);
        if dup {
            self.emit(FaultKind::Duplicate, to, 0);
            self.inner.send(to, msg);
        }
    }
}

impl Transport for FaultTransport {
    fn send(&self, to: ProcessId, msg: &Msg) {
        self.send_on_link(self.me, to, msg);
    }

    fn broadcast(&self, from: ProcessId, msg: &Msg) {
        for &p in &self.team {
            if p != from {
                self.send_on_link(from, p, msg);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{Incoming, MemTransport};
    use crossbeam::channel::{unbounded, Receiver};
    use std::sync::Arc;
    use tw_obs::VecSink;
    use tw_proto::{ClockSyncMsg, HwTime};

    fn sample(from: u16, rid: u64) -> Msg {
        Msg::ClockSync(ClockSyncMsg::Request {
            sender: ProcessId(from),
            rid,
            hw_send: HwTime(1),
        })
    }

    fn rid_of(inc: &Incoming) -> u64 {
        match inc {
            Incoming::Msg(_, Msg::ClockSync(ClockSyncMsg::Request { rid, .. })) => *rid,
            other => panic!("unexpected incoming {other:?}"),
        }
    }

    /// A 2-node fabric: node 0's wrapped transport plus node 1's inbox.
    fn pair(
        seed: u64,
        sink: Arc<VecSink>,
    ) -> (Arc<FaultTransport>, Receiver<Incoming>, Arc<ChaosNet>) {
        let (tx0, _rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let mem = MemTransport::new(vec![tx0.into(), tx1.into()]);
        let net = ChaosNet::new(seed);
        let team = vec![ProcessId(0), ProcessId(1)];
        let t = FaultTransport::new(
            ProcessId(0),
            team,
            mem,
            net.clone(),
            Tracer::new(sink),
        );
        (t, rx1, net)
    }

    #[test]
    fn clean_plan_is_transparent() {
        let (t, rx, net) = pair(1, Arc::new(VecSink::new()));
        for rid in 0..50 {
            t.send(ProcessId(1), &sample(0, rid));
        }
        let got: Vec<u64> = rx.try_iter().map(|m| rid_of(&m)).collect();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        assert_eq!(net.injected_counts(), [0; FaultKind::ALL.len()]);
    }

    #[test]
    fn drops_are_deterministic_across_reruns() {
        let run = |seed: u64| -> Vec<u64> {
            let (t, rx, net) = pair(seed, Arc::new(VecSink::new()));
            net.set_default_plan(LinkPlan::lossy(300_000));
            for rid in 0..200 {
                t.send(ProcessId(1), &sample(0, rid));
            }
            rx.try_iter().map(|m| rid_of(&m)).collect()
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed must reproduce the same drop pattern");
        assert_ne!(a, c, "different seeds should differ");
        assert!(a.len() < 200, "a 30% lossy link must drop something");
        assert!(a.len() > 100, "a 30% lossy link must pass most traffic");
    }

    #[test]
    fn toggling_one_knob_leaves_other_fates_alone() {
        // Same seed: the set of *dropped* rids must be identical whether
        // or not duplication is also enabled.
        let run = |dup_ppm: u32| -> HashSet<u64> {
            let (t, rx, net) = pair(7, Arc::new(VecSink::new()));
            net.set_default_plan(LinkPlan {
                drop_ppm: 300_000,
                dup_ppm,
                ..LinkPlan::default()
            });
            for rid in 0..200 {
                t.send(ProcessId(1), &sample(0, rid));
            }
            rx.try_iter().map(|m| rid_of(&m)).collect()
        };
        let without_dup = run(0);
        let with_dup = run(500_000);
        assert_eq!(
            without_dup, with_dup,
            "the surviving set must not shift when duplication is enabled"
        );
    }

    #[test]
    fn cut_links_swallow_directionally_and_heal() {
        let (t, rx, net) = pair(3, Arc::new(VecSink::new()));
        net.cut(ProcessId(0), ProcessId(1));
        t.send(ProcessId(1), &sample(0, 1));
        assert!(rx.try_recv().is_err(), "cut link must swallow");
        assert_eq!(net.cut_swallowed(), 1);
        net.heal(ProcessId(0), ProcessId(1));
        t.send(ProcessId(1), &sample(0, 2));
        assert_eq!(rid_of(&rx.try_recv().unwrap()), 2);
    }

    #[test]
    fn partition_cuts_cross_side_links_only() {
        let net = ChaosNet::new(9);
        let p = |n: u16| ProcessId(n);
        net.partition(&[vec![p(0), p(1)], vec![p(2)]]);
        assert!(net.is_cut(p(0), p(2)));
        assert!(net.is_cut(p(2), p(1)));
        assert!(!net.is_cut(p(0), p(1)));
        net.heal_all();
        assert!(!net.is_cut(p(0), p(2)));
    }

    #[test]
    fn corruption_exercises_the_decoder_then_drops() {
        let sink = Arc::new(VecSink::new());
        let (t, rx, net) = pair(5, sink.clone());
        net.set_default_plan(LinkPlan {
            corrupt_ppm: 1_000_000,
            ..LinkPlan::default()
        });
        for rid in 0..64 {
            t.send(ProcessId(1), &sample(0, rid));
        }
        assert!(rx.try_recv().is_err(), "corrupted datagrams never arrive");
        assert_eq!(net.injected(FaultKind::Corrupt), 64);
        let corrupts = sink
            .snapshot()
            .into_iter()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::FaultInjected {
                        pid: ProcessId(0),
                        kind: FaultKind::Corrupt,
                        target: ProcessId(1),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(corrupts, 64);
    }

    #[test]
    fn duplicates_arrive_exactly_twice() {
        let (t, rx, net) = pair(11, Arc::new(VecSink::new()));
        net.set_default_plan(LinkPlan {
            dup_ppm: 1_000_000,
            ..LinkPlan::default()
        });
        for rid in 0..10 {
            t.send(ProcessId(1), &sample(0, rid));
        }
        let got: Vec<u64> = rx.try_iter().map(|m| rid_of(&m)).collect();
        let expect: Vec<u64> = (0..10).flat_map(|r| [r, r]).collect();
        assert_eq!(got, expect);
        assert_eq!(net.injected(FaultKind::Duplicate), 10);
    }

    #[test]
    fn delayed_datagrams_arrive_late_but_arrive() {
        let (t, rx, net) = pair(13, Arc::new(VecSink::new()));
        net.set_default_plan(LinkPlan {
            delay_ppm: 1_000_000,
            delay_ms: 40,
            ..LinkPlan::default()
        });
        t.send(ProcessId(1), &sample(0, 77));
        assert!(rx.try_recv().is_err(), "must not arrive synchronously");
        let got = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("delayed datagram must eventually arrive");
        assert_eq!(rid_of(&got), 77);
        assert_eq!(net.injected(FaultKind::Delay), 1);
    }

    #[test]
    fn reordered_datagram_is_overtaken_by_later_traffic() {
        let (t, rx, net) = pair(17, Arc::new(VecSink::new()));
        // Hold the first message back, then switch the plan off at
        // runtime so the second goes straight through.
        net.set_default_plan(LinkPlan {
            reorder_ppm: 1_000_000,
            hold_ms: 60,
            ..LinkPlan::default()
        });
        t.send(ProcessId(1), &sample(0, 1));
        net.set_default_plan(LinkPlan::clean());
        t.send(ProcessId(1), &sample(0, 2));
        let first = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let second = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(rid_of(&first), 2, "later traffic overtakes the held one");
        assert_eq!(rid_of(&second), 1, "held datagram still arrives");
        assert_eq!(net.injected(FaultKind::Reorder), 1);
    }

    #[test]
    fn broadcast_decomposes_per_link() {
        let (tx0, _rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let (tx2, rx2) = unbounded();
        let mem = MemTransport::new(vec![tx0.into(), tx1.into(), tx2.into()]);
        let net = ChaosNet::new(21);
        let team = vec![ProcessId(0), ProcessId(1), ProcessId(2)];
        let t = FaultTransport::new(
            ProcessId(0),
            team,
            mem,
            net.clone(),
            Tracer::disabled(),
        );
        net.cut(ProcessId(0), ProcessId(1));
        t.broadcast(ProcessId(0), &sample(0, 5));
        assert!(rx1.try_recv().is_err(), "cut leg of the broadcast vanishes");
        assert_eq!(rid_of(&rx2.try_recv().unwrap()), 5);
    }

    #[test]
    fn lane_is_a_pure_function_of_its_key() {
        let a: Vec<u64> = {
            let mut r = lane(99, ProcessId(1), ProcessId(2), 7);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = lane(99, ProcessId(1), ProcessId(2), 7);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = lane(99, ProcessId(2), ProcessId(1), 7);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c, "link direction must matter");
    }
}
