//! Node handles and cluster assembly.
//!
//! A [`Node`] owns the threads hosting one protocol member and exposes a
//! command channel (propose, shutdown) plus an output channel
//! (deliveries, view installations, departures). [`spawn_cluster`] builds
//! an in-process team over [`MemTransport`]; [`spawn_udp_cluster`] builds
//! one over real UDP sockets.

use crate::chaos::{NodeStatus, PauseGate, StatusCell};
use crate::clock::{RealClock, RuntimeClock};
use crate::metrics::NodeMetrics;
use crate::transport::{node_inbox, Incoming, MemTransport, OutBatch, Transport, UdpTransport};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use timewheel::events::LeaveReason;
use timewheel::member::broadcast::ProposeError;
use timewheel::{Config, Delivery, Member};
use tw_obs::{
    FlightRecorder, OpsServer, OpsSources, RecorderConfig, Snapshot, StreamSink, TeeSink,
    TraceSink, Tracer,
};
use tw_proto::{ProcessId, Semantics, View};

/// Commands a client can send to its node.
#[derive(Debug)]
pub enum NodeCommand {
    /// Broadcast an update.
    Propose(Bytes, Semantics),
    /// Stop all node threads.
    Shutdown,
}

/// Everything a node reports back to its client.
#[derive(Debug, Clone)]
pub enum NodeOutput {
    /// An update was delivered.
    Delivery(Delivery),
    /// A new view was installed.
    View(View),
    /// The member dropped back to join state.
    Left(LeaveReason),
    /// A propose command was rejected.
    ProposeRejected(ProposeError),
}

/// Which executor hosts the member (paper §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorKind {
    /// Single-threaded event handler (the paper's choice).
    EventLoop,
    /// One thread per event type over a shared lock (the rejected
    /// baseline from \[22], kept for the T7 comparison).
    Threaded,
}

/// Bound on a node's inbox channel. When the node cannot keep up,
/// excess datagrams are shed (counted in `tw_inbox_dropped_total`)
/// instead of growing an unbounded queue — the datagram model permits
/// the omission, and overload stays observable instead of becoming an
/// OOM.
pub const INBOX_CAPACITY: usize = 4096;

/// A running protocol node.
pub struct Node {
    /// The member's process id.
    pub pid: ProcessId,
    cmds: Sender<NodeCommand>,
    /// Stream of deliveries/views/departures.
    pub outputs: Receiver<NodeOutput>,
    handles: Vec<std::thread::JoinHandle<()>>,
    udp: Option<Arc<UdpTransport>>,
    metrics: Arc<NodeMetrics>,
    recorder: Option<Arc<FlightRecorder>>,
    gate: Arc<PauseGate>,
    status: Arc<StatusCell>,
    ops: Option<OpsServer>,
    stream: Option<Arc<StreamSink>>,
}

impl Node {
    /// This node's live metrics (counters update while the node runs).
    pub fn metrics(&self) -> &NodeMetrics {
        &self.metrics
    }

    /// This node's flight recorder, when one was attached at spawn.
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.as_ref()
    }

    /// The path of this node's recording file, when recording.
    pub fn recording_path(&self) -> Option<&Path> {
        self.recorder.as_ref().map(|r| r.path())
    }

    /// Persist any buffered trace events now (no-op when not
    /// recording). The executor also flushes at every view install and
    /// on shutdown/panic.
    pub fn flush_recorder(&self) {
        if let Some(r) = &self.recorder {
            r.flush();
        }
    }

    /// A point-in-time copy of this node's metrics, exportable as JSON.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.metrics.snapshot()
    }

    /// Broadcast an update (fire-and-forget; rejection reported on
    /// `outputs`).
    pub fn propose(&self, payload: Bytes, semantics: Semantics) {
        let _ = self.cmds.send(NodeCommand::Propose(payload, semantics));
    }

    /// Freeze this node's executor threads at their next dispatch
    /// (chaos harness: fake arbitrarily slow processing). The node's
    /// peers see silence, exactly as for a performance failure.
    pub fn pause(&self) {
        self.gate.pause();
    }

    /// Unfreeze a paused node.
    pub fn resume(&self) {
        self.gate.resume();
    }

    /// The member's locally observed status (fail-awareness §6),
    /// published by the executor after every dispatch.
    pub fn status(&self) -> NodeStatus {
        self.status.read()
    }

    /// The address of this node's ops endpoint (`/metrics`, `/status`,
    /// `/healthz`, `/trace`), when one was attached at spawn.
    pub fn ops_addr(&self) -> Option<std::net::SocketAddr> {
        self.ops.as_ref().map(|s| s.addr())
    }

    /// This node's live trace stream, when an ops endpoint was attached
    /// at spawn (subscribers get TWFR-framed segments as they flush).
    pub fn trace_stream(&self) -> Option<&Arc<StreamSink>> {
        self.stream.as_ref()
    }

    /// Wire-level counters of this node's UDP transport — syscalls,
    /// datagrams and messages sent/received (`None` on channel-mesh
    /// clusters). The quantity behind the syscalls-per-decision claim.
    pub fn wire_stats(&self) -> Option<crate::transport::WireStats> {
        self.udp.as_ref().map(|u| u.wire_stats())
    }

    /// Stop the node and join its threads.
    pub fn shutdown(mut self) {
        // A paused node must be released or its threads never observe
        // the shutdown.
        self.gate.resume();
        let _ = self.cmds.send(NodeCommand::Shutdown);
        if let Some(udp) = &self.udp {
            udp.shutdown();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        // Ship whatever the live stream still buffers so tailers see
        // the tail before the ops server (dropped with self) goes away.
        if let Some(s) = &self.stream {
            s.flush();
        }
    }

    /// Drain outputs until a view of `size` members is installed or the
    /// timeout elapses. Returns the view.
    pub fn wait_for_view(&self, size: usize, timeout: std::time::Duration) -> Option<View> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let left = deadline.checked_duration_since(std::time::Instant::now())?;
            match self.outputs.recv_timeout(left) {
                Ok(NodeOutput::View(v)) if v.len() == size => return Some(v),
                Ok(_) => continue,
                Err(_) => return None,
            }
        }
    }

    /// Drain outputs until `count` deliveries were seen or the timeout
    /// elapses; returns the deliveries seen.
    pub fn wait_for_deliveries(&self, count: usize, timeout: std::time::Duration) -> Vec<Delivery> {
        let deadline = std::time::Instant::now() + timeout;
        let mut out = Vec::new();
        while out.len() < count {
            let Some(left) = deadline.checked_duration_since(std::time::Instant::now()) else {
                break;
            };
            match self.outputs.recv_timeout(left) {
                Ok(NodeOutput::Delivery(d)) => out.push(d),
                Ok(_) => continue,
                Err(_) => break,
            }
        }
        out
    }
}

/// What the application hook is called with.
#[derive(Debug)]
pub enum AppEvent<'a> {
    /// An update was delivered (apply it).
    Deliver(&'a Delivery),
    /// A join-time snapshot arrived (replace the application state).
    InstallSnapshot(&'a Bytes),
}

/// Application hook run inside the executor on every delivery and on
/// join-time snapshot installation; a `Some(snapshot)` return value
/// becomes the member's fresh application snapshot (shipped to
/// joiners), keeping application state and protocol state consistent by
/// construction.
pub type DeliveryHook = Box<dyn FnMut(AppEvent<'_>) -> Option<Bytes> + Send>;

pub(crate) struct NodeParts {
    pub member: Member,
    pub inbox: Receiver<Incoming>,
    pub cmds: Receiver<NodeCommand>,
    pub out: Sender<NodeOutput>,
    pub transport: Arc<dyn Transport>,
    pub clock: Arc<dyn RuntimeClock + Sync>,
    pub hook: Option<DeliveryHook>,
    pub metrics: Arc<NodeMetrics>,
    /// The node's black box; the executor holds a flush guard on its
    /// stack so the tail is persisted even on panic unwind.
    pub recorder: Option<Arc<FlightRecorder>>,
    /// Chaos pause switch; executors check it before every dispatch.
    pub gate: Arc<PauseGate>,
    /// Where the executor publishes the member's observed status.
    pub status: Arc<StatusCell>,
}

/// Per-node ops wiring resolved by the cluster spawner: where the ops
/// server should listen and the live stream (already teed into the
/// member's tracer) it should serve at `/trace`.
pub(crate) struct OpsWiring {
    pub addr: String,
    pub stream: Option<Arc<StreamSink>>,
}

/// Everything [`spawn_node`] needs to host one member.
pub(crate) struct SpawnArgs {
    pub kind: ExecutorKind,
    pub member: Member,
    pub inbox: Receiver<Incoming>,
    pub transport: Arc<dyn Transport>,
    pub udp: Option<Arc<UdpTransport>>,
    pub extra_handles: Vec<std::thread::JoinHandle<()>>,
    pub hook: Option<DeliveryHook>,
    pub recorder: Option<Arc<FlightRecorder>>,
    pub metrics: Arc<NodeMetrics>,
    pub clock: Arc<dyn RuntimeClock + Sync>,
    pub ops: Option<OpsWiring>,
}

/// Render the `/status` payload from the executor-published
/// [`NodeStatus`] — hand-built JSON, same discipline as
/// [`tw_obs::metrics::Snapshot::to_json`] (no serde dependency).
fn status_json(pid: ProcessId, s: NodeStatus) -> String {
    format!(
        "{{\"pid\":{},\"up_to_date\":{},\"view_len\":{},\"view_seq\":{}}}",
        pid.0, s.up_to_date, s.view_len, s.view_seq
    )
}

pub(crate) fn spawn_node(args: SpawnArgs) -> std::io::Result<Node> {
    let SpawnArgs {
        kind,
        member,
        inbox,
        transport,
        udp,
        mut extra_handles,
        hook,
        recorder,
        metrics,
        clock,
        ops,
    } = args;
    let pid = member.pid();
    let (cmd_tx, cmd_rx) = unbounded();
    let (out_tx, out_rx) = unbounded();
    let gate = Arc::new(PauseGate::new());
    let status = Arc::new(StatusCell::new());
    // Bind the ops endpoint before the member threads start so a port
    // clash surfaces as an error here, not a half-observable node.
    let (ops_server, stream) = match ops {
        Some(wiring) => {
            let status_for_json = status.clone();
            let status_for_health = status.clone();
            let sources = OpsSources {
                registry: metrics.shared_registry(),
                labels: vec![("pid".to_string(), pid.0.to_string())],
                status_json: Arc::new(move || status_json(pid, status_for_json.read())),
                // Health is the §6 fail-awareness verdict: the member's
                // own judgement of whether it is up to date, not mere
                // process liveness (liveness is the TCP connect itself).
                healthy: Arc::new(move || status_for_health.read().up_to_date),
            };
            let server = OpsServer::bind(wiring.addr.as_str(), sources, wiring.stream.clone())?;
            (Some(server), wiring.stream)
        }
        None => (None, None),
    };
    let parts = NodeParts {
        member,
        inbox,
        cmds: cmd_rx,
        out: out_tx,
        transport,
        clock,
        hook,
        metrics: metrics.clone(),
        recorder: recorder.clone(),
        gate: gate.clone(),
        status: status.clone(),
    };
    let main = std::thread::Builder::new()
        .name(format!("tw-node-{pid}"))
        .spawn(move || match kind {
            ExecutorKind::EventLoop => crate::event_loop::run(parts),
            ExecutorKind::Threaded => crate::threaded::run(parts),
        })
        .expect("spawn node thread");
    extra_handles.push(main);
    Ok(Node {
        pid,
        cmds: cmd_tx,
        outputs: out_rx,
        handles: extra_handles,
        udp,
        metrics,
        recorder,
        gate,
        status,
        ops: ops_server,
        stream,
    })
}

/// Where a cluster's per-node ops endpoints listen and how their live
/// trace streams are buffered.
#[derive(Debug, Clone)]
pub struct OpsSetup {
    /// Base TCP port on localhost: the node of rank `r` listens on
    /// `base_port + r`. `0` gives every node an ephemeral port —
    /// discover them through [`Node::ops_addr`].
    pub base_port: u16,
    /// Events buffered per node before the live stream ships a
    /// TWFR-framed segment to its subscribers (view installations force
    /// a flush, mirroring the flight recorder).
    pub stream_capacity: usize,
}

impl OpsSetup {
    /// Ops endpoints on ephemeral ports with the default stream
    /// batching (256 events per segment).
    pub fn ephemeral() -> Self {
        OpsSetup {
            base_port: 0,
            stream_capacity: 256,
        }
    }

    /// Ops endpoints on the fixed ports `base_port + rank`.
    pub fn at(base_port: u16) -> Self {
        OpsSetup {
            base_port,
            stream_capacity: 256,
        }
    }

    /// Override the live stream's per-segment event budget.
    pub fn stream_capacity(mut self, capacity: usize) -> Self {
        self.stream_capacity = capacity.max(1);
        self
    }

    /// The listen address for the node of rank `rank`.
    pub(crate) fn addr_for(&self, rank: usize) -> String {
        if self.base_port == 0 {
            "127.0.0.1:0".to_string()
        } else {
            format!("127.0.0.1:{}", self.base_port + rank as u16)
        }
    }
}

/// Start an in-process team of `n` members over channel datagrams.
pub fn spawn_cluster(kind: ExecutorKind, cfg: Config) -> Vec<Node> {
    spawn_cluster_with_hooks(kind, cfg, |_| None)
}

/// Start an in-process team, attaching a per-node application hook
/// (see [`DeliveryHook`]); `make_hook` is called once per node.
pub fn spawn_cluster_with_hooks(
    kind: ExecutorKind,
    cfg: Config,
    make_hook: impl FnMut(ProcessId) -> Option<DeliveryHook>,
) -> Vec<Node> {
    spawn_cluster_inner(kind, cfg, make_hook, None, None, None)
        .expect("no ops endpoints requested, spawn cannot fail")
}

/// Start an in-process team with every member's trace stream attached to
/// `sink` — e.g. a [`tw_obs::SharedAuditor`] checking the protocol's
/// invariants live, or a [`tw_obs::VecSink`] capturing events for later
/// analysis. Events from all members interleave on the one sink; each
/// event carries its emitting process id.
pub fn spawn_cluster_traced(
    kind: ExecutorKind,
    cfg: Config,
    sink: Arc<dyn TraceSink>,
) -> Vec<Node> {
    spawn_cluster_inner(kind, cfg, |_| None, Some(sink), None, None)
        .expect("no ops endpoints requested, spawn cannot fail")
}

/// Start an in-process team with a live ops endpoint per node: each
/// member serves `/metrics` (Prometheus text), `/status` (JSON),
/// `/healthz` (the member's own §6 fail-awareness verdict) and `/trace`
/// (a TWFR-framed live stream of its trace events) on localhost TCP.
/// `tw-top` and any Prometheus scraper attach to these addresses.
pub fn spawn_cluster_observed(
    kind: ExecutorKind,
    cfg: Config,
    ops: &OpsSetup,
) -> std::io::Result<Vec<Node>> {
    spawn_cluster_inner(kind, cfg, |_| None, None, None, Some(ops))
}

/// Where and how a cluster's flight recorders write their per-node
/// recording files (`<dir>/node-<pid>.twrec`).
#[derive(Debug, Clone)]
pub struct RecorderSetup {
    /// Directory the recording files are created in (created if
    /// missing).
    pub dir: PathBuf,
    /// Per-node in-memory buffer capacity, in events (see
    /// [`RecorderConfig::capacity`]).
    pub capacity: usize,
}

impl RecorderSetup {
    /// Record into `dir` with the default per-node buffer capacity.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        RecorderSetup {
            dir: dir.into(),
            capacity: 1024,
        }
    }

    /// Override the per-node buffer capacity.
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// The recording file for `pid`.
    pub fn path_for(&self, pid: ProcessId) -> PathBuf {
        self.dir.join(format!("node-{}.twrec", pid.0))
    }
}

/// Start an in-process team with a [`FlightRecorder`] attached to every
/// node: each member's trace stream is spilled crash-safely to
/// `<dir>/node-<pid>.twrec`, flushed at every view installation and on
/// shutdown or panic. The recordings are the input to the `tw-trace`
/// analyzer.
pub fn spawn_cluster_recorded(
    kind: ExecutorKind,
    cfg: Config,
    setup: &RecorderSetup,
) -> std::io::Result<Vec<Node>> {
    spawn_cluster_recorded_traced(kind, cfg, setup, None)
}

/// [`spawn_cluster_recorded`] plus a shared live sink (e.g. a
/// [`tw_obs::SharedAuditor`]): every event goes to both the node's
/// recorder and `sink`.
pub fn spawn_cluster_recorded_traced(
    kind: ExecutorKind,
    cfg: Config,
    setup: &RecorderSetup,
    sink: Option<Arc<dyn TraceSink>>,
) -> std::io::Result<Vec<Node>> {
    std::fs::create_dir_all(&setup.dir)?;
    // Create every recording file up front so I/O errors surface here,
    // not inside node threads.
    let recorders = (0..cfg.n)
        .map(|i| {
            let pid = ProcessId(i as u16);
            let rc = RecorderConfig::new(pid, cfg.n, cfg.epsilon).capacity(setup.capacity);
            FlightRecorder::create(setup.path_for(pid), rc).map(Arc::new)
        })
        .collect::<std::io::Result<Vec<_>>>()?;
    spawn_cluster_inner(kind, cfg, |_| None, sink, Some(recorders), None)
}

/// Combine a node's optional sinks (recorder, shared live sink, ops
/// stream) into the single [`TraceSink`] its tracer writes to.
fn combine_sinks(
    recorder: &Option<Arc<FlightRecorder>>,
    shared: &Option<Arc<dyn TraceSink>>,
    stream: &Option<Arc<StreamSink>>,
) -> Option<Arc<dyn TraceSink>> {
    let mut sinks: Vec<Arc<dyn TraceSink>> = Vec::new();
    if let Some(r) = recorder {
        sinks.push(r.clone());
    }
    if let Some(s) = shared {
        sinks.push(s.clone());
    }
    if let Some(s) = stream {
        sinks.push(s.clone());
    }
    match sinks.len() {
        0 => None,
        1 => sinks.pop(),
        _ => Some(Arc::new(TeeSink::new(sinks))),
    }
}

fn spawn_cluster_inner(
    kind: ExecutorKind,
    cfg: Config,
    mut make_hook: impl FnMut(ProcessId) -> Option<DeliveryHook>,
    sink: Option<Arc<dyn TraceSink>>,
    recorders: Option<Vec<Arc<FlightRecorder>>>,
    ops: Option<&OpsSetup>,
) -> std::io::Result<Vec<Node>> {
    let n = cfg.n;
    // Metrics exist before the inboxes so each bounded inbox can count
    // its shed datagrams into its node's `tw_inbox_dropped_total`.
    let metrics: Vec<Arc<NodeMetrics>> = (0..n).map(|_| NodeMetrics::new()).collect();
    let mut inbox_txs = Vec::with_capacity(n);
    let mut inbox_rxs = Vec::with_capacity(n);
    for m in &metrics {
        let (tx, rx) = node_inbox(INBOX_CAPACITY, Some(m.inbox_dropped()));
        inbox_txs.push(tx);
        inbox_rxs.push(rx);
    }
    let transport = MemTransport::new(inbox_txs);
    inbox_rxs
        .into_iter()
        .enumerate()
        .map(|(i, inbox)| {
            let pid = ProcessId(i as u16);
            let mut member = Member::new_unchecked(pid, cfg);
            let recorder = recorders.as_ref().map(|rs| rs[i].clone());
            let stream = ops.map(|o| {
                Arc::new(StreamSink::new(pid, cfg.n, cfg.epsilon, o.stream_capacity))
            });
            if let Some(s) = combine_sinks(&recorder, &sink, &stream) {
                member.set_tracer(Tracer::new(s));
            }
            spawn_node(SpawnArgs {
                kind,
                member,
                inbox,
                transport: transport.clone() as Arc<dyn Transport>,
                udp: None,
                extra_handles: Vec::new(),
                hook: make_hook(pid),
                recorder,
                metrics: metrics[i].clone(),
                clock: Arc::new(RealClock::new()),
                ops: ops.map(|o| OpsWiring {
                    addr: o.addr_for(i),
                    stream: stream.clone(),
                }),
            })
        })
        .collect()
}

/// Start a team of `n` members over real localhost UDP sockets on
/// ephemeral ports.
pub fn spawn_udp_cluster(kind: ExecutorKind, cfg: Config) -> std::io::Result<Vec<Node>> {
    spawn_udp_cluster_inner(kind, cfg, None)
}

/// [`spawn_udp_cluster`] plus a live ops endpoint per node (see
/// [`spawn_cluster_observed`]): the closest thing to the deployed
/// telemetry topology — real datagrams below, a real scrape plane above.
pub fn spawn_udp_cluster_observed(
    kind: ExecutorKind,
    cfg: Config,
    ops: &OpsSetup,
) -> std::io::Result<Vec<Node>> {
    spawn_udp_cluster_inner(kind, cfg, Some(ops))
}

fn spawn_udp_cluster_inner(
    kind: ExecutorKind,
    cfg: Config,
    ops: Option<&OpsSetup>,
) -> std::io::Result<Vec<Node>> {
    let n = cfg.n;
    // Reserve n ephemeral ports first.
    let sockets: Vec<std::net::UdpSocket> = (0..n)
        .map(|_| std::net::UdpSocket::bind("127.0.0.1:0"))
        .collect::<Result<_, _>>()?;
    let addrs: Vec<std::net::SocketAddr> = sockets
        .iter()
        .map(|s| s.local_addr())
        .collect::<Result<_, _>>()?;
    drop(sockets);
    let peers: HashMap<ProcessId, std::net::SocketAddr> = addrs
        .iter()
        .enumerate()
        .map(|(i, a)| (ProcessId(i as u16), *a))
        .collect();
    let mut nodes = Vec::with_capacity(n);
    for (i, addr) in addrs.iter().enumerate() {
        let pid = ProcessId(i as u16);
        let transport = UdpTransport::bind(pid, *addr, peers.clone())?;
        let metrics = NodeMetrics::new();
        transport.set_batch_fill_gauge(metrics.batch_fill());
        let (inbox_tx, inbox_rx) = node_inbox(INBOX_CAPACITY, Some(metrics.inbox_dropped()));
        let rx_handle = transport.spawn_receiver(inbox_tx, Some(metrics.udp_recv_errors()));
        let mut member = Member::new_unchecked(pid, cfg);
        let stream =
            ops.map(|o| Arc::new(StreamSink::new(pid, cfg.n, cfg.epsilon, o.stream_capacity)));
        if let Some(s) = combine_sinks(&None, &None, &stream) {
            member.set_tracer(Tracer::new(s));
        }
        nodes.push(spawn_node(SpawnArgs {
            kind,
            member,
            inbox: inbox_rx,
            transport: transport.clone() as Arc<dyn Transport>,
            udp: Some(transport),
            extra_handles: vec![rx_handle],
            hook: None,
            recorder: None,
            metrics,
            clock: Arc::new(RealClock::new()),
            ops: ops.map(|o| OpsWiring {
                addr: o.addr_for(i),
                stream: stream.clone(),
            }),
        })?);
    }
    Ok(nodes)
}

/// Apply protocol actions to the runtime environment. Returns the new
/// clock-tick deadline, if the actions rescheduled it, plus the fresh
/// application snapshot if the delivery hook produced one (the caller
/// pushes it into the member).
///
/// Outbound messages are collected into `batch` (the executor's
/// long-lived [`OutBatch`], so encoder scratch is reused across
/// dispatches) and put on the wire in one [`Transport::flush`] at the
/// end — on UDP that is one coalesced datagram per destination and one
/// vectored syscall for the whole dispatch.
pub(crate) fn apply_actions(
    pid: ProcessId,
    actions: Vec<timewheel::Action>,
    transport: &dyn Transport,
    out: &Sender<NodeOutput>,
    now: tw_proto::HwTime,
    hook: &mut Option<DeliveryHook>,
    metrics: &NodeMetrics,
    batch: &mut OutBatch,
) -> (Option<tw_proto::HwTime>, Option<Bytes>) {
    let mut next_clock = None;
    let mut snapshot = None;
    for a in actions {
        match a {
            timewheel::Action::Broadcast(m) => {
                metrics.on_send(m.kind());
                batch.push_broadcast(m);
            }
            timewheel::Action::Send(to, m) => {
                metrics.on_send(m.kind());
                batch.push_send(to, m);
            }
            timewheel::Action::Deliver(d) => {
                metrics.on_delivery();
                if let Some(h) = hook {
                    if let Some(s) = h(AppEvent::Deliver(&d)) {
                        snapshot = Some(s);
                    }
                }
                let _ = out.send(NodeOutput::Delivery(d));
            }
            timewheel::Action::InstallAppState(b) => {
                if let Some(h) = hook {
                    if let Some(s) = h(AppEvent::InstallSnapshot(&b)) {
                        snapshot = Some(s);
                    }
                }
            }
            timewheel::Action::InstallView(v) => {
                metrics.on_view();
                let _ = out.send(NodeOutput::View(v));
            }
            timewheel::Action::LeftGroup { reason } => {
                let _ = out.send(NodeOutput::Left(reason));
            }
            timewheel::Action::ScheduleClockTick(d) => {
                next_clock = Some(now + d);
            }
        }
    }
    transport.flush(pid, batch);
    (next_clock, snapshot)
}
