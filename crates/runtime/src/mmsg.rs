//! Vectored datagram I/O behind one [`BatchSocket`] trait.
//!
//! The hot path sends one coalesced datagram per destination per
//! dispatch; without vectoring that is still n−1 `sendto` syscalls per
//! broadcast. On Linux/glibc this module submits the whole fan-out as a
//! single `sendmmsg(2)` call and drains the receive queue with
//! `recvmmsg(2)`, so the syscall count per dispatch is O(1) instead of
//! O(n). Everywhere else (and for non-IPv4 peers) a portable sequential
//! fallback issues the classic one-syscall-per-datagram loop with the
//! same observable behavior.
//!
//! The FFI is hand-declared (this workspace takes no new dependencies):
//! `repr(C)` layouts match glibc on `x86_64`/`aarch64` — note glibc's
//! `msghdr` uses `size_t` for `msg_iovlen`, unlike the raw kernel ABI —
//! and the whole unsafe surface is confined to this module behind the
//! safe [`BatchSocket`] methods. Gated on `target_env = "gnu"` so musl
//! or other libcs get the portable fallback instead of a layout gamble.

use std::net::UdpSocket;

/// Most datagrams one batched syscall will submit or drain. Well under
/// `UIO_MAXIOV`; batches larger than this loop, one syscall per chunk.
pub const MAX_BATCH: usize = 64;

/// One outbound datagram: payload and destination.
pub type OutDatagram<'a> = (&'a [u8], std::net::SocketAddr);

/// A receive buffer slot: `len` bytes of `buf` are valid after a
/// successful [`BatchSocket::recv_batch`].
#[derive(Debug)]
pub struct RecvSlot {
    /// Backing storage for one datagram.
    pub buf: Vec<u8>,
    /// Length of the datagram last received into this slot.
    pub len: usize,
}

impl RecvSlot {
    /// A slot able to hold one max-size UDP datagram.
    pub fn new(capacity: usize) -> Self {
        RecvSlot {
            buf: vec![0u8; capacity],
            len: 0,
        }
    }

    /// The valid bytes of the last received datagram.
    pub fn datagram(&self) -> &[u8] {
        &self.buf[..self.len]
    }
}

/// Batched send/receive over one datagram socket.
///
/// Both methods are best-effort, like UDP itself: a failed or partial
/// submission is indistinguishable from network loss to the protocol.
pub trait BatchSocket {
    /// Submit every (payload, destination) datagram. Returns the number
    /// of syscalls issued (the quantity the hot-path optimization
    /// minimizes; exposed so benchmarks and tests can assert on it).
    fn send_batch(&self, items: &[OutDatagram<'_>]) -> usize;

    /// Receive up to `slots.len()` datagrams in one pass, blocking (per
    /// the socket's read timeout) only for the first. Returns how many
    /// slots were filled, or the socket error (timeouts included, so the
    /// caller's poll loop sees them exactly as with `recv_from`).
    fn recv_batch(&self, slots: &mut [RecvSlot]) -> std::io::Result<usize>;
}

impl BatchSocket for UdpSocket {
    fn send_batch(&self, items: &[OutDatagram<'_>]) -> usize {
        imp::send_batch(self, items)
    }

    fn recv_batch(&self, slots: &mut [RecvSlot]) -> std::io::Result<usize> {
        imp::recv_batch(self, slots)
    }
}

/// Which backend [`BatchSocket`] compiled to (benchmarks tag their
/// output with this).
pub fn backend() -> &'static str {
    imp::BACKEND
}

/// Portable sequential implementation: one syscall per datagram. Used
/// directly on non-Linux targets and as the escape path for address
/// families the vectored path does not handle.
mod seq {
    use super::{OutDatagram, RecvSlot};
    use std::net::UdpSocket;

    pub fn send_batch(sock: &UdpSocket, items: &[OutDatagram<'_>]) -> usize {
        let mut syscalls = 0;
        for (payload, addr) in items {
            syscalls += 1;
            let _ = sock.send_to(payload, addr);
        }
        syscalls
    }

    // On linux-gnu only the send side falls back here (non-IPv4
    // batches); `recvmmsg` handles every receive, so this stays unused.
    #[cfg_attr(all(target_os = "linux", target_env = "gnu"), allow(dead_code))]
    pub fn recv_batch(sock: &UdpSocket, slots: &mut [RecvSlot]) -> std::io::Result<usize> {
        let Some(first) = slots.first_mut() else {
            return Ok(0);
        };
        let (len, _src) = sock.recv_from(&mut first.buf)?;
        first.len = len;
        Ok(1)
    }
}

#[cfg(not(all(target_os = "linux", target_env = "gnu")))]
mod imp {
    pub const BACKEND: &str = "sequential";
    pub use super::seq::{recv_batch, send_batch};
}

#[cfg(all(target_os = "linux", target_env = "gnu"))]
#[allow(unsafe_code)]
mod imp {
    //! The one unsafe region of the crate: glibc `sendmmsg`/`recvmmsg`.
    //!
    //! Safety argument, in one place: every pointer handed to the kernel
    //! (`iovec` bases, the `msgvec` array, `sockaddr_in` names) points
    //! into stack-owned `Vec`s that outlive the syscall and are never
    //! reallocated between pointer capture and the call; lengths are the
    //! owning buffers' lengths; `msg_control`/`msg_name` are null where
    //! unused, with zero lengths. The kernel writes only into
    //! `iov_base[0..iov_len]` and the `msg_len` fields.

    use super::{seq, OutDatagram, RecvSlot, MAX_BATCH};
    use std::net::{SocketAddr, UdpSocket};
    use std::os::fd::AsRawFd;
    use std::os::raw::{c_int, c_uint, c_void};

    pub const BACKEND: &str = "sendmmsg";

    /// `MSG_WAITFORONE`: block (per the socket timeout) for the first
    /// datagram only, then return whatever else is already queued.
    const MSG_WAITFORONE: c_int = 0x10000;
    const AF_INET: u16 = 2;

    #[repr(C)]
    struct IoVec {
        iov_base: *mut c_void,
        iov_len: usize,
    }

    /// glibc layout: `msg_iovlen`/`msg_controllen` are `size_t` (the
    /// kernel ABI's are not — this is why the gate is `gnu`, not
    /// `linux`).
    #[repr(C)]
    struct MsgHdr {
        msg_name: *mut c_void,
        msg_namelen: u32,
        msg_iov: *mut IoVec,
        msg_iovlen: usize,
        msg_control: *mut c_void,
        msg_controllen: usize,
        msg_flags: c_int,
    }

    #[repr(C)]
    struct MMsgHdr {
        msg_hdr: MsgHdr,
        msg_len: c_uint,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct SockAddrIn {
        sin_family: u16,
        sin_port: u16,     // network byte order
        sin_addr: u32,     // network byte order
        sin_zero: [u8; 8],
    }

    extern "C" {
        fn sendmmsg(sockfd: c_int, msgvec: *mut MMsgHdr, vlen: c_uint, flags: c_int) -> c_int;
        fn recvmmsg(
            sockfd: c_int,
            msgvec: *mut MMsgHdr,
            vlen: c_uint,
            flags: c_int,
            timeout: *mut c_void, // struct timespec*; always null here
        ) -> c_int;
    }

    fn v4_name(addr: &SocketAddr) -> Option<SockAddrIn> {
        let SocketAddr::V4(v4) = addr else {
            return None;
        };
        Some(SockAddrIn {
            sin_family: AF_INET,
            sin_port: v4.port().to_be(),
            sin_addr: u32::from_ne_bytes(v4.ip().octets()),
            sin_zero: [0; 8],
        })
    }

    pub fn send_batch(sock: &UdpSocket, items: &[OutDatagram<'_>]) -> usize {
        // Any non-IPv4 destination: take the portable path for the whole
        // batch (mixed-family batches are not worth the complexity; the
        // runtime's clusters are single-family).
        let Some(names) = items
            .iter()
            .map(|(_, a)| v4_name(a))
            .collect::<Option<Vec<_>>>()
        else {
            return seq::send_batch(sock, items);
        };
        let fd = sock.as_raw_fd();
        let mut syscalls = 0;
        let mut names = names;
        for (chunk_at, chunk) in items.chunks(MAX_BATCH).enumerate() {
            let names = &mut names[chunk_at * MAX_BATCH..];
            // iovecs and headers are rebuilt per chunk; all referenced
            // storage (payloads, `names`) outlives the syscall below.
            let mut iovs: Vec<IoVec> = chunk
                .iter()
                .map(|(payload, _)| IoVec {
                    iov_base: payload.as_ptr() as *mut c_void,
                    iov_len: payload.len(),
                })
                .collect();
            let mut hdrs: Vec<MMsgHdr> = (0..chunk.len())
                .map(|i| MMsgHdr {
                    msg_hdr: MsgHdr {
                        msg_name: (&mut names[i]) as *mut SockAddrIn as *mut c_void,
                        msg_namelen: std::mem::size_of::<SockAddrIn>() as u32,
                        msg_iov: (&mut iovs[i]) as *mut IoVec,
                        msg_iovlen: 1,
                        msg_control: std::ptr::null_mut(),
                        msg_controllen: 0,
                        msg_flags: 0,
                    },
                    msg_len: 0,
                })
                .collect();
            let mut sent = 0usize;
            while sent < hdrs.len() {
                syscalls += 1;
                // SAFETY: fd is a live socket owned by `sock`; `hdrs`,
                // `iovs`, `names` and the payload slices all outlive
                // this call; vlen matches the array length handed in.
                let rc = unsafe {
                    sendmmsg(
                        fd,
                        hdrs.as_mut_ptr().add(sent),
                        (hdrs.len() - sent) as c_uint,
                        0,
                    )
                };
                if rc <= 0 {
                    // Best effort: an errored batch reads as loss.
                    break;
                }
                sent += rc as usize;
            }
        }
        syscalls
    }

    pub fn recv_batch(sock: &UdpSocket, slots: &mut [RecvSlot]) -> std::io::Result<usize> {
        if slots.is_empty() {
            return Ok(0);
        }
        let fd = sock.as_raw_fd();
        let n = slots.len().min(MAX_BATCH);
        let mut iovs: Vec<IoVec> = slots[..n]
            .iter_mut()
            .map(|s| IoVec {
                iov_base: s.buf.as_mut_ptr() as *mut c_void,
                iov_len: s.buf.len(),
            })
            .collect();
        let mut hdrs: Vec<MMsgHdr> = (0..n)
            .map(|i| MMsgHdr {
                msg_hdr: MsgHdr {
                    msg_name: std::ptr::null_mut(), // sender unused
                    msg_namelen: 0,
                    msg_iov: (&mut iovs[i]) as *mut IoVec,
                    msg_iovlen: 1,
                    msg_control: std::ptr::null_mut(),
                    msg_controllen: 0,
                    msg_flags: 0,
                },
                msg_len: 0,
            })
            .collect();
        // SAFETY: as in send_batch; additionally each iov_base points at
        // `slots[i].buf`, which the kernel fills up to iov_len bytes and
        // which outlives the call. Null timeout: blocking behavior comes
        // from the socket's SO_RCVTIMEO, so timeouts surface as EAGAIN
        // exactly like `recv_from`.
        let rc = unsafe {
            recvmmsg(
                fd,
                hdrs.as_mut_ptr(),
                n as c_uint,
                MSG_WAITFORONE,
                std::ptr::null_mut(),
            )
        };
        if rc < 0 {
            return Err(std::io::Error::last_os_error());
        }
        let filled = rc as usize;
        for (slot, hdr) in slots[..filled].iter_mut().zip(&hdrs) {
            slot.len = (hdr.msg_len as usize).min(slot.buf.len());
        }
        Ok(filled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::SocketAddr;

    fn pair() -> (UdpSocket, UdpSocket, SocketAddr) {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        let to_b = b.local_addr().unwrap();
        (a, b, to_b)
    }

    #[test]
    fn send_batch_delivers_every_datagram() {
        let (a, b, to_b) = pair();
        b.set_read_timeout(Some(std::time::Duration::from_secs(2)))
            .unwrap();
        let payloads: Vec<Vec<u8>> = (0u8..5).map(|i| vec![i; 16 + i as usize]).collect();
        let items: Vec<OutDatagram<'_>> = payloads.iter().map(|p| (p.as_slice(), to_b)).collect();
        let syscalls = a.send_batch(&items);
        assert!(syscalls >= 1);
        #[cfg(all(target_os = "linux", target_env = "gnu"))]
        assert_eq!(syscalls, 1, "5 datagrams must ride one sendmmsg");
        let mut seen = Vec::new();
        let mut buf = [0u8; 2048];
        for _ in 0..payloads.len() {
            let (len, _) = b.recv_from(&mut buf).unwrap();
            seen.push(buf[..len].to_vec());
        }
        // UDP may reorder even on loopback; compare as sets.
        seen.sort();
        let mut want = payloads.clone();
        want.sort();
        assert_eq!(seen, want);
    }

    #[test]
    fn recv_batch_drains_queued_datagrams() {
        let (a, b, to_b) = pair();
        b.set_read_timeout(Some(std::time::Duration::from_secs(2)))
            .unwrap();
        for i in 0u8..4 {
            a.send_to(&[i; 8], to_b).unwrap();
        }
        // Give loopback a moment to queue everything.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let mut slots: Vec<RecvSlot> = (0..8).map(|_| RecvSlot::new(2048)).collect();
        let mut got = 0;
        while got < 4 {
            got += b.recv_batch(&mut slots[got..]).unwrap();
        }
        assert_eq!(got, 4);
        for slot in &slots[..got] {
            assert_eq!(slot.len, 8);
        }
    }

    #[test]
    fn recv_batch_times_out_like_recv_from() {
        let (_a, b, _to_b) = pair();
        b.set_read_timeout(Some(std::time::Duration::from_millis(50)))
            .unwrap();
        let mut slots = [RecvSlot::new(64)];
        let err = b.recv_batch(&mut slots).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn backend_is_reported() {
        let be = backend();
        assert!(be == "sendmmsg" || be == "sequential");
    }
}
