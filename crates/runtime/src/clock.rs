//! Real hardware clocks for runtime nodes.
//!
//! In the timed asynchronous model every process reads only its own,
//! unsynchronized hardware clock. [`RealClock`] maps a node's monotonic
//! [`Instant`] stream to [`HwTime`] — each node anchors its own epoch, so
//! two nodes' hardware clocks are unrelated, exactly as the model
//! assumes. (Rate drift between cores of one machine is negligible; the
//! fail-aware clock-sync layer tolerates it by construction.)

use std::time::Instant;
use tw_proto::HwTime;

/// Source of a node's hardware time.
pub trait RuntimeClock: Send + 'static {
    /// Current hardware clock reading.
    fn now_hw(&self) -> HwTime;
}

/// Monotonic wall-clock based hardware clock with a per-node epoch.
#[derive(Debug, Clone)]
pub struct RealClock {
    start: Instant,
    /// Artificial offset, letting tests model arbitrary clock skew.
    offset_us: i64,
}

impl RealClock {
    /// A clock starting at zero now.
    pub fn new() -> Self {
        RealClock {
            start: Instant::now(),
            offset_us: 0,
        }
    }

    /// A clock with an artificial initial offset (model skew).
    pub fn with_offset_us(offset_us: i64) -> Self {
        RealClock {
            start: Instant::now(),
            offset_us,
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl RuntimeClock for RealClock {
    fn now_hw(&self) -> HwTime {
        HwTime(self.start.elapsed().as_micros() as i64 + self.offset_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotone() {
        let c = RealClock::new();
        let a = c.now_hw();
        let b = c.now_hw();
        assert!(b >= a);
    }

    #[test]
    fn offset_applies() {
        let c = RealClock::with_offset_us(1_000_000);
        assert!(c.now_hw() >= HwTime(1_000_000));
    }

    #[test]
    fn clock_advances() {
        let c = RealClock::new();
        let a = c.now_hw();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let b = c.now_hw();
        assert!((b - a).as_micros() >= 4_000);
    }
}
