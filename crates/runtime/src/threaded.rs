//! The thread-based executor — the baseline the paper measured and
//! rejected (§5, and the comparison in reference \[22]).
//!
//! One thread per event *type*: a receive thread, a protocol-tick thread,
//! a clock-tick thread and a command thread, all serializing on a mutex
//! around the shared [`timewheel::Member`]. Every event pays a lock acquisition and
//! usually a context switch; under load the threads contend. Experiment
//! T7 quantifies the difference against [`crate::event_loop`].

use crate::node::{apply_actions, NodeCommand, NodeOutput, NodeParts};
use crate::transport::{Incoming, OutBatch};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration as StdDuration;

pub(crate) fn run(parts: NodeParts) {
    let NodeParts {
        mut member,
        inbox,
        cmds,
        out,
        transport,
        clock,
        hook,
        metrics,
        recorder,
        gate,
        status,
    } = parts;
    // Held on the command-loop stack so the flight recorder's tail is
    // spilled even if this thread panics (the Node's Arc keeps the
    // recorder alive, so Drop alone would not fire here).
    let recorder_watch = recorder.clone();
    let _recorder_guard = tw_obs::FlushGuard::new(recorder);
    let hook = Arc::new(Mutex::new(hook));
    let pid = member.pid();
    let tick = member.config().tick;
    let resync = member.config().clock.resync_interval;

    let stop = Arc::new(AtomicBool::new(false));
    let next_clock = Arc::new(AtomicI64::new(0));

    // One outbound batch per thread that applies actions (batches are
    // not shared — each thread's dispatches flush independently). This
    // one serves the start-up dispatch and the command loop below.
    let mut cmd_batch = OutBatch::new();

    // Start the member before the event threads exist.
    {
        let now = clock.now_hw();
        next_clock.store((now + resync).0, Ordering::Relaxed);
        let actions = member.on_start(now);
        let (t, snap) = apply_actions(
            pid,
            actions,
            &*transport,
            &out,
            now,
            &mut hook.lock(),
            &metrics,
            &mut cmd_batch,
        );
        if let Some(t) = t {
            next_clock.store(t.0, Ordering::Relaxed);
        }
        if let Some(s) = snap {
            member.set_app_snapshot(s);
        }
    }
    let member = Arc::new(Mutex::new(member));

    let mut handles = Vec::new();

    // Faithful to the paper's baseline: "a separate thread is spawned for
    // each event type". A demultiplexer thread classifies datagrams by
    // message kind and hands each kind to its own handler thread; every
    // handler serializes on the member lock. The per-event context
    // switches and lock hand-offs are exactly the overhead §5 describes.
    {
        let mut kind_txs = std::collections::HashMap::new();
        for kind in tw_proto::MsgKind::ALL {
            let (tx, rx) = crossbeam::channel::unbounded::<(tw_proto::ProcessId, tw_proto::Msg)>();
            kind_txs.insert(kind, tx);
            let member = member.clone();
            let transport = transport.clone();
            let out = out.clone();
            let clock = clock.clone();
            let stop = stop.clone();
            let next_clock = next_clock.clone();
            let hook = hook.clone();
            let metrics = metrics.clone();
            let gate = gate.clone();
            handles.push(std::thread::spawn(move || {
                let mut batch = OutBatch::new();
                while !stop.load(Ordering::Relaxed) {
                    gate.block_while_paused();
                    match rx.recv_timeout(StdDuration::from_millis(20)) {
                        Ok((from, msg)) => {
                            let started = std::time::Instant::now();
                            let now = clock.now_hw();
                            let actions = member.lock().on_message(now, from, msg);
                            let (t, snap) = apply_actions(
                                pid,
                                actions,
                                &*transport,
                                &out,
                                now,
                                &mut hook.lock(),
                                &metrics,
                                &mut batch,
                            );
                            metrics.on_dispatch(started);
                            if let Some(t) = t {
                                next_clock.store(t.0, Ordering::Relaxed);
                            }
                            if let Some(s) = snap {
                                member.lock().set_app_snapshot(s);
                            }
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                        Err(_) => return,
                    }
                }
            }));
        }
        let stop = stop.clone();
        let gate = gate.clone();
        let inbox_depth = metrics.inbox_depth();
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                gate.block_while_paused();
                inbox_depth.set(inbox.len() as i64);
                match inbox.recv_timeout(StdDuration::from_millis(20)) {
                    Ok(Incoming::Msg(from, msg)) => {
                        if let Some(tx) = kind_txs.get(&msg.kind()) {
                            let _ = tx.send((from, msg));
                        }
                    }
                    // A coalesced datagram: fan the messages out to the
                    // per-kind handlers one by one — faithful to the
                    // baseline's thread-per-event-type design (this
                    // executor exists to measure that design's cost).
                    Ok(Incoming::Batch(from, msgs)) => {
                        for msg in msgs {
                            if let Some(tx) = kind_txs.get(&msg.kind()) {
                                let _ = tx.send((from, msg));
                            }
                        }
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                    Err(_) => return,
                }
            }
        }));
    }

    // Protocol-tick thread.
    {
        let member = member.clone();
        let transport = transport.clone();
        let out = out.clone();
        let clock = clock.clone();
        let stop = stop.clone();
        let next_clock = next_clock.clone();
        let hook = hook.clone();
        let metrics = metrics.clone();
        let gate = gate.clone();
        let status = status.clone();
        let recorder_watch = recorder_watch.clone();
        let recorder_buffered = metrics.recorder_buffered();
        handles.push(std::thread::spawn(move || {
            let period = StdDuration::from_micros(tick.as_micros() as u64);
            let mut batch = OutBatch::new();
            while !stop.load(Ordering::Relaxed) {
                gate.block_while_paused();
                let before = clock.now_hw();
                std::thread::sleep(period);
                let now = clock.now_hw();
                // How late the tick fired versus its intended deadline
                // (sleep start + period): the scheduler latency this
                // baseline pays per tick.
                metrics.on_tick_lag((now - (before + tick)).as_micros().max(0) as u64);
                let actions = member.lock().on_tick(now);
                let (t, snap) = apply_actions(
                    pid,
                    actions,
                    &*transport,
                    &out,
                    now,
                    &mut hook.lock(),
                    &metrics,
                    &mut batch,
                );
                if let Some(t) = t {
                    next_clock.store(t.0, Ordering::Relaxed);
                }
                if let Some(s) = snap {
                    member.lock().set_app_snapshot(s);
                }
                if let Some(r) = &recorder_watch {
                    recorder_buffered.set(r.buffered() as i64);
                }
                // Publish the member's locally observed status (§6
                // fail-awareness) for harness-side checks.
                let now = clock.now_hw();
                let m = member.lock();
                status.publish(crate::chaos::NodeStatus {
                    up_to_date: m.is_up_to_date(now),
                    view_len: m.view().len(),
                    view_seq: m.view().id.seq,
                });
            }
        }));
    }

    // Clock-tick thread.
    {
        let member = member.clone();
        let transport = transport.clone();
        let out = out.clone();
        let clock = clock.clone();
        let stop = stop.clone();
        let next_clock = next_clock.clone();
        let hook = hook.clone();
        let metrics = metrics.clone();
        let gate = gate.clone();
        handles.push(std::thread::spawn(move || {
            let mut batch = OutBatch::new();
            while !stop.load(Ordering::Relaxed) {
                gate.block_while_paused();
                let now = clock.now_hw();
                let due = next_clock.load(Ordering::Relaxed);
                if now.0 >= due {
                    metrics.on_deadline_overrun((now.0 - due).max(0) as u64);
                    let actions = member.lock().on_clock_tick(now);
                    let (t, _) = apply_actions(
                        pid,
                        actions,
                        &*transport,
                        &out,
                        now,
                        &mut hook.lock(),
                        &metrics,
                        &mut batch,
                    );
                    match t {
                        Some(t) => next_clock.store(t.0, Ordering::Relaxed),
                        None => next_clock.store((now + resync).0, Ordering::Relaxed),
                    }
                } else {
                    let wait = ((due - now.0) as u64).min(20_000);
                    std::thread::sleep(StdDuration::from_micros(wait.max(100)));
                }
            }
        }));
    }

    // Command handling runs on this thread until shutdown.
    #[allow(clippy::while_let_loop)] // symmetric with the other match arms
    loop {
        match cmds.recv() {
            Ok(NodeCommand::Propose(payload, sem)) => {
                let now = clock.now_hw();
                let r = member.lock().propose(now, payload, sem);
                match r {
                    Ok(actions) => {
                        let (t, snap) = apply_actions(
                            pid,
                            actions,
                            &*transport,
                            &out,
                            now,
                            &mut hook.lock(),
                            &metrics,
                            &mut cmd_batch,
                        );
                        if let Some(t) = t {
                            next_clock.store(t.0, Ordering::Relaxed);
                        }
                        if let Some(s) = snap {
                            member.lock().set_app_snapshot(s);
                        }
                    }
                    Err(e) => {
                        let _ = out.send(NodeOutput::ProposeRejected(e));
                    }
                }
            }
            Ok(NodeCommand::Shutdown) | Err(_) => break,
        }
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        let _ = h.join();
    }
}
