//! Loom model checks for the runtime's hand-rolled concurrency
//! primitives (`tw_runtime::status`, `tw_runtime::inbox`).
//!
//! These tests only exist under `RUSTFLAGS="--cfg loom"`; a normal
//! `cargo test` compiles this file to nothing. Under loom, each
//! `loom::model` closure is executed once per *possible interleaving*
//! of the threads it spawns, so the assertions quantify over every
//! schedule the memory model admits — the dynamic complement to the
//! `cargo xtask lint-concurrency` static pass (DESIGN.md §13).
//!
//! Run: `RUSTFLAGS="--cfg loom" cargo test -p tw-runtime --test loom`
//! (CI `concurrency-analysis` job; offline via tools/shadow/check.sh
//! with the loom stub, which degrades the exhaustive exploration to a
//! single-schedule smoke run).
#![cfg(loom)]

use loom::sync::Arc;
use loom::thread;
use tw_runtime::inbox::{node_inbox, Deliver, Incoming};
use tw_runtime::status::{NodeStatus, StatusCell};
use tw_proto::{ClockSyncMsg, HwTime, Msg, ProcessId};

fn msg(n: u16) -> Incoming {
    Incoming::Msg(
        ProcessId(n),
        Msg::ClockSync(ClockSyncMsg::Request {
            sender: ProcessId(n),
            rid: n as u64,
            hw_send: HwTime(1),
        }),
    )
}

const STATUS_A: NodeStatus = NodeStatus {
    up_to_date: true,
    view_len: 3,
    view_seq: 7,
};
const STATUS_B: NodeStatus = NodeStatus {
    up_to_date: false,
    view_len: 2,
    view_seq: 8,
};
const STATUS_INIT: NodeStatus = NodeStatus {
    up_to_date: false,
    view_len: 0,
    view_seq: 0,
};

/// A reader racing two publishes can only ever observe one of the
/// three complete statuses — never a torn mix of their bit fields.
#[test]
fn status_cell_reads_are_never_torn() {
    loom::model(|| {
        let cell = Arc::new(StatusCell::new());
        let writer = {
            let cell = cell.clone();
            thread::spawn(move || {
                cell.publish(STATUS_A);
                cell.publish(STATUS_B);
            })
        };
        let got = cell.read();
        assert!(
            got == STATUS_INIT || got == STATUS_A || got == STATUS_B,
            "torn read: {got:?}"
        );
        writer.join().unwrap();
        // After the writer is joined, the last publish is visible.
        assert_eq!(cell.read(), STATUS_B);
    });
}

/// With a single writer publishing monotonically increasing view
/// sequences, a reader's successive reads are monotone too: the
/// release store / acquire load pairing forbids going back in time.
#[test]
fn status_cell_view_seq_is_monotone_for_a_reader() {
    loom::model(|| {
        let cell = Arc::new(StatusCell::new());
        let writer = {
            let cell = cell.clone();
            thread::spawn(move || {
                cell.publish(STATUS_A); // seq 7
                cell.publish(STATUS_B); // seq 8
            })
        };
        let first = cell.read().view_seq;
        let second = cell.read().view_seq;
        assert!(
            second >= first,
            "view_seq ran backwards: {first} then {second}"
        );
        writer.join().unwrap();
    });
}

/// Two senders racing a capacity-1 inbox: exactly one datagram is
/// queued or drained, every other one is *counted* shed — the race can
/// lose a message only by saying so.
#[test]
fn inbox_at_capacity_sheds_and_counts_every_loss() {
    loom::model(|| {
        let shed = tw_obs::Counter::default();
        let (tx, rx) = node_inbox(1, Some(shed.clone()));
        let t1 = {
            let tx = tx.clone();
            thread::spawn(move || tx.deliver(msg(1)))
        };
        let r2 = tx.deliver(msg(2));
        let r1 = t1.join().unwrap();
        let outcomes = [r1, r2];
        let delivered = outcomes.iter().filter(|d| **d == Deliver::Delivered).count();
        let shed_n = outcomes.iter().filter(|d| **d == Deliver::Shed).count();
        assert_eq!(delivered + shed_n, 2, "no datagram silently vanished");
        assert!(delivered >= 1, "capacity-1 inbox accepted nothing");
        assert_eq!(
            shed.get(),
            shed_n as u64,
            "every shed datagram is counted"
        );
        // End-state accounting: queued + shed == offered.
        let mut queued = 0;
        while rx.try_recv().is_some() {
            queued += 1;
        }
        assert_eq!(queued + shed_n, 2);
    });
}

/// A sender racing the receiver's drop either delivers into the live
/// queue or observes `Closed` — and `Closed` is never counted as shed
/// (the node is gone, not overloaded).
#[test]
fn inbox_delivery_racing_receiver_drop_is_delivered_or_closed() {
    loom::model(|| {
        let shed = tw_obs::Counter::default();
        let (tx, rx) = node_inbox(4, Some(shed.clone()));
        let closer = thread::spawn(move || drop(rx));
        let outcome = tx.deliver(msg(1));
        assert!(
            outcome == Deliver::Delivered || outcome == Deliver::Closed,
            "a roomy inbox cannot shed: {outcome:?}"
        );
        assert_eq!(shed.get(), 0);
        closer.join().unwrap();
    });
}
