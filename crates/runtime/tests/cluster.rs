//! Real-time cluster tests: both executors and both transports must form
//! a group and deliver updates on actual threads and sockets.

use bytes::Bytes;
use std::time::Duration as StdDuration;
use timewheel::Config;
use tw_proto::{Duration, Semantics};
use tw_runtime::{spawn_cluster, spawn_udp_cluster, ExecutorKind, Node, NodeOutput};

fn cfg(n: usize) -> Config {
    Config::for_team(n, Duration::from_millis(10))
}

fn form_group(nodes: &[Node], n: usize) {
    for node in nodes {
        let v = node
            .wait_for_view(n, StdDuration::from_secs(20))
            .unwrap_or_else(|| panic!("{} never saw the full view", node.pid));
        assert_eq!(v.len(), n);
    }
}

fn shutdown(nodes: Vec<Node>) {
    for n in nodes {
        n.shutdown();
    }
}

fn cluster_forms_and_delivers(kind: ExecutorKind) {
    let n = 3;
    let nodes = spawn_cluster(kind, cfg(n));
    form_group(&nodes, n);
    // Propose from node 0; every node must deliver.
    nodes[0].propose(Bytes::from_static(b"hello"), Semantics::TOTAL_STRONG);
    for node in &nodes {
        let ds = node.wait_for_deliveries(1, StdDuration::from_secs(10));
        assert_eq!(ds.len(), 1, "{} missed the delivery", node.pid);
        assert_eq!(ds[0].payload, Bytes::from_static(b"hello"));
    }
    shutdown(nodes);
}

#[test]
fn event_loop_cluster_forms_and_delivers() {
    cluster_forms_and_delivers(ExecutorKind::EventLoop);
}

#[test]
fn threaded_cluster_forms_and_delivers() {
    cluster_forms_and_delivers(ExecutorKind::Threaded);
}

#[test]
fn udp_cluster_forms_and_delivers() {
    let n = 3;
    let nodes = spawn_udp_cluster(ExecutorKind::EventLoop, cfg(n)).expect("bind sockets");
    form_group(&nodes, n);
    nodes[1].propose(Bytes::from_static(b"over-udp"), Semantics::UNORDERED_WEAK);
    for node in &nodes {
        let ds = node.wait_for_deliveries(1, StdDuration::from_secs(10));
        assert_eq!(ds.len(), 1, "{} missed the delivery", node.pid);
    }
    shutdown(nodes);
}

#[test]
fn both_executors_deliver_a_burst_identically() {
    let n = 3;
    let count = 20;
    for kind in [ExecutorKind::EventLoop, ExecutorKind::Threaded] {
        let nodes = spawn_cluster(kind, cfg(n));
        form_group(&nodes, n);
        for k in 0..count {
            nodes[k % n].propose(Bytes::from(format!("u{k}")), Semantics::TOTAL_STRONG);
            std::thread::sleep(StdDuration::from_millis(5));
        }
        for node in &nodes {
            let ds = node.wait_for_deliveries(count, StdDuration::from_secs(30));
            assert_eq!(ds.len(), count, "{:?}: {} incomplete", kind, node.pid);
        }
        shutdown(nodes);
    }
}

#[test]
fn shutdown_node_is_removed_from_membership() {
    let n = 3;
    let nodes = spawn_cluster(ExecutorKind::EventLoop, cfg(n));
    form_group(&nodes, n);
    let mut it = nodes.into_iter();
    let dead = it.next().unwrap();
    let rest: Vec<Node> = it.collect();
    dead.shutdown(); // crash, as seen by the others
    for node in &rest {
        let v = node
            .wait_for_view(n - 1, StdDuration::from_secs(20))
            .unwrap_or_else(|| panic!("{} never removed the dead node", node.pid));
        assert!(!v.contains(tw_proto::ProcessId(0)));
    }
    shutdown(rest);
}

#[test]
fn propose_before_membership_is_rejected() {
    // A 2-team with only one node started: no group can form, proposals
    // must be rejected with NotMember/NotSynced.
    let c = cfg(2);
    let mut nodes = spawn_cluster(ExecutorKind::EventLoop, c);
    let lone = nodes.remove(0);
    // Shut the second node immediately: the first stays groupless.
    nodes.remove(0).shutdown();
    std::thread::sleep(StdDuration::from_millis(300));
    lone.propose(Bytes::from_static(b"x"), Semantics::UNORDERED_WEAK);
    let deadline = std::time::Instant::now() + StdDuration::from_secs(5);
    let mut rejected = false;
    while std::time::Instant::now() < deadline {
        match lone.outputs.recv_timeout(StdDuration::from_millis(200)) {
            Ok(NodeOutput::ProposeRejected(_)) => {
                rejected = true;
                break;
            }
            Ok(_) => continue,
            Err(_) => continue,
        }
    }
    assert!(rejected, "groupless propose was not rejected");
    lone.shutdown();
}
