//! Real-time cluster tests: both executors and both transports must form
//! a group and deliver updates on actual threads and sockets.

use bytes::Bytes;
use std::sync::Arc;
use std::time::Duration as StdDuration;
use timewheel::Config;
use tw_obs::{SharedAuditor, TraceSink};
use tw_proto::{Duration, Semantics};
use tw_runtime::{
    spawn_cluster, spawn_cluster_recorded, spawn_cluster_traced, spawn_udp_cluster, ExecutorKind,
    Node, NodeOutput, RecorderSetup,
};

fn cfg(n: usize) -> Config {
    Config::for_team(n, Duration::from_millis(10))
}

fn form_group(nodes: &[Node], n: usize) {
    for node in nodes {
        let v = node
            .wait_for_view(n, StdDuration::from_secs(20))
            .unwrap_or_else(|| panic!("{} never saw the full view", node.pid));
        assert_eq!(v.len(), n);
    }
}

fn shutdown(nodes: Vec<Node>) {
    for n in nodes {
        n.shutdown();
    }
}

fn cluster_forms_and_delivers(kind: ExecutorKind) {
    let n = 3;
    let nodes = spawn_cluster(kind, cfg(n));
    form_group(&nodes, n);
    // Propose from node 0; every node must deliver.
    nodes[0].propose(Bytes::from_static(b"hello"), Semantics::TOTAL_STRONG);
    for node in &nodes {
        let ds = node.wait_for_deliveries(1, StdDuration::from_secs(10));
        assert_eq!(ds.len(), 1, "{} missed the delivery", node.pid);
        assert_eq!(ds[0].payload, Bytes::from_static(b"hello"));
    }
    shutdown(nodes);
}

#[test]
fn event_loop_cluster_forms_and_delivers() {
    cluster_forms_and_delivers(ExecutorKind::EventLoop);
}

#[test]
fn threaded_cluster_forms_and_delivers() {
    cluster_forms_and_delivers(ExecutorKind::Threaded);
}

#[test]
fn udp_cluster_forms_and_delivers() {
    let n = 3;
    let nodes = spawn_udp_cluster(ExecutorKind::EventLoop, cfg(n)).expect("bind sockets");
    form_group(&nodes, n);
    nodes[1].propose(Bytes::from_static(b"over-udp"), Semantics::UNORDERED_WEAK);
    for node in &nodes {
        let ds = node.wait_for_deliveries(1, StdDuration::from_secs(10));
        assert_eq!(ds.len(), 1, "{} missed the delivery", node.pid);
    }
    shutdown(nodes);
}

#[test]
fn both_executors_deliver_a_burst_identically() {
    let n = 3;
    let count = 20;
    for kind in [ExecutorKind::EventLoop, ExecutorKind::Threaded] {
        let nodes = spawn_cluster(kind, cfg(n));
        form_group(&nodes, n);
        for k in 0..count {
            nodes[k % n].propose(Bytes::from(format!("u{k}")), Semantics::TOTAL_STRONG);
            std::thread::sleep(StdDuration::from_millis(5));
        }
        for node in &nodes {
            let ds = node.wait_for_deliveries(count, StdDuration::from_secs(30));
            assert_eq!(ds.len(), count, "{:?}: {} incomplete", kind, node.pid);
        }
        shutdown(nodes);
    }
}

#[test]
fn shutdown_node_is_removed_from_membership() {
    let n = 3;
    let nodes = spawn_cluster(ExecutorKind::EventLoop, cfg(n));
    form_group(&nodes, n);
    let mut it = nodes.into_iter();
    let dead = it.next().unwrap();
    let rest: Vec<Node> = it.collect();
    dead.shutdown(); // crash, as seen by the others
    for node in &rest {
        let v = node
            .wait_for_view(n - 1, StdDuration::from_secs(20))
            .unwrap_or_else(|| panic!("{} never removed the dead node", node.pid));
        assert!(!v.contains(tw_proto::ProcessId(0)));
    }
    shutdown(rest);
}

#[test]
fn propose_before_membership_is_rejected() {
    // A 2-team with only one node started: no group can form, proposals
    // must be rejected with NotMember/NotSynced.
    let c = cfg(2);
    let mut nodes = spawn_cluster(ExecutorKind::EventLoop, c);
    let lone = nodes.remove(0);
    // Shut the second node immediately: the first stays groupless.
    nodes.remove(0).shutdown();
    std::thread::sleep(StdDuration::from_millis(300));
    lone.propose(Bytes::from_static(b"x"), Semantics::UNORDERED_WEAK);
    let deadline = std::time::Instant::now() + StdDuration::from_secs(5);
    let mut rejected = false;
    while std::time::Instant::now() < deadline {
        match lone.outputs.recv_timeout(StdDuration::from_millis(200)) {
            Ok(NodeOutput::ProposeRejected(_)) => {
                rejected = true;
                break;
            }
            Ok(_) => continue,
            Err(_) => continue,
        }
    }
    assert!(rejected, "groupless propose was not rejected");
    lone.shutdown();
}

/// The paper's T1 claim, measured on the real runtime instead of the
/// simulator, and asserted *only* from the metrics registry: during a
/// stable (failure-free) window a 5-node cluster exchanges zero
/// membership-protocol messages — no no-decisions, no joins, no
/// reconfigurations — and the decision load is evenly rotated.
fn failure_free_window_is_membership_silent(kind: ExecutorKind) {
    let n = 5;
    let nodes = spawn_cluster(kind, cfg(n));
    form_group(&nodes, n);
    // Let the join/reconfiguration tail from group formation drain.
    std::thread::sleep(StdDuration::from_millis(500));

    let before: Vec<_> = nodes.iter().map(Node::metrics_snapshot).collect();
    std::thread::sleep(StdDuration::from_millis(2500));
    let after: Vec<_> = nodes.iter().map(Node::metrics_snapshot).collect();

    let mut decisions = Vec::new();
    for (node, (b, a)) in nodes.iter().zip(before.iter().zip(after.iter())) {
        let d = a.delta(b);
        assert_eq!(
            d.counter("sends.no-decision"),
            0,
            "{:?}: {} sent no-decisions in a stable window",
            kind,
            node.pid
        );
        assert_eq!(
            d.counter("sends.join"),
            0,
            "{:?}: {} sent joins in a stable window",
            kind,
            node.pid
        );
        assert_eq!(
            d.counter("sends.reconfig"),
            0,
            "{:?}: {} sent reconfigs in a stable window",
            kind,
            node.pid
        );
        decisions.push(d.counter("sends.decision"));
    }
    let max = decisions.iter().copied().max().unwrap_or(0);
    let min = decisions.iter().copied().min().unwrap_or(0);
    assert!(
        max >= 1,
        "{kind:?}: no decisions at all in the window — is the wheel turning?"
    );
    assert!(
        max - min <= 1,
        "{kind:?}: decision load skewed across the rotation: {decisions:?}"
    );
    shutdown(nodes);
}

#[test]
fn event_loop_failure_free_window_is_membership_silent() {
    failure_free_window_is_membership_silent(ExecutorKind::EventLoop);
}

#[test]
fn threaded_failure_free_window_is_membership_silent() {
    failure_free_window_is_membership_silent(ExecutorKind::Threaded);
}

#[test]
fn event_loop_records_dispatch_latency() {
    let n = 3;
    let nodes = spawn_cluster(ExecutorKind::EventLoop, cfg(n));
    form_group(&nodes, n);
    nodes[0].propose(Bytes::from_static(b"timed"), Semantics::TOTAL_STRONG);
    for node in &nodes {
        node.wait_for_deliveries(1, StdDuration::from_secs(10));
        let s = node.metrics_snapshot();
        let h = s
            .histograms
            .get("dispatch_latency_us")
            .expect("dispatch latency histogram registered");
        assert!(h.count > 0, "{} dispatched nothing", node.pid);
        assert!(s.counter("deliveries") >= 1);
        assert!(s.counter("views_installed") >= 1);
    }
    shutdown(nodes);
}

/// Every node of a recorded cluster writes a loadable flight recording,
/// flushed on shutdown by the executor's guard; the offline analyzer
/// reconstructs the run from the files alone with a clean audit.
#[test]
fn recorded_cluster_writes_analyzable_recordings() {
    let n = 3;
    let dir = std::env::temp_dir().join(format!("tw-runtime-rec-{}", std::process::id()));
    let setup = RecorderSetup::new(&dir).capacity(128);
    let nodes =
        spawn_cluster_recorded(ExecutorKind::EventLoop, cfg(n), &setup).expect("create recordings");
    form_group(&nodes, n);
    nodes[0].propose(Bytes::from_static(b"boxed"), Semantics::TOTAL_STRONG);
    for node in &nodes {
        let ds = node.wait_for_deliveries(1, StdDuration::from_secs(10));
        assert_eq!(ds.len(), 1, "{} missed the delivery", node.pid);
        assert!(node.recording_path().is_some());
    }
    shutdown(nodes);

    let recordings: Vec<tw_obs::Recording> = (0..n)
        .map(|i| {
            let r = tw_obs::Recording::load(setup.path_for(tw_proto::ProcessId(i as u16)))
                .expect("load recording");
            assert_eq!(r.damage, None, "clean shutdown left damage on node {i}");
            assert!(!r.events.is_empty(), "node {i} recorded nothing");
            r
        })
        .collect();
    let set = tw_obs::TraceSet::new(recordings).expect("distinct recordings");
    let analysis = tw_obs::analyze(&set);
    assert!(
        analysis
            .merged
            .iter()
            .any(|e| matches!(e, tw_obs::TraceEvent::Delivered { .. })),
        "recordings lost the delivery"
    );
    assert!(
        analysis.audits_clean(),
        "offline audit of the recorded cluster failed: {:?} / {:?}",
        analysis.audit,
        analysis.cross
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The live invariant auditor tails the trace streams of all five
/// members while the cluster forms, broadcasts and delivers; at the end
/// it must have seen real events and flagged nothing.
#[test]
fn live_auditor_sees_a_clean_cluster() {
    /// Forwards to the auditor while counting, so the test can prove
    /// events actually flowed (a disconnected tracer would trivially
    /// pass `assert_clean`).
    struct CountingSink {
        auditor: SharedAuditor,
        seen: std::sync::atomic::AtomicU64,
    }
    impl TraceSink for CountingSink {
        fn record(&self, ev: &tw_obs::TraceEvent) {
            self.seen.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.auditor.record(ev);
        }
    }

    let n = 5;
    let auditor = SharedAuditor::new(n);
    let sink = Arc::new(CountingSink {
        auditor: auditor.clone(),
        seen: std::sync::atomic::AtomicU64::new(0),
    });
    let nodes = spawn_cluster_traced(
        ExecutorKind::EventLoop,
        cfg(n),
        sink.clone() as Arc<dyn TraceSink>,
    );
    form_group(&nodes, n);
    let count = 10;
    for k in 0..count {
        nodes[k % n].propose(Bytes::from(format!("audited-{k}")), Semantics::TOTAL_STRONG);
        std::thread::sleep(StdDuration::from_millis(5));
    }
    for node in &nodes {
        let ds = node.wait_for_deliveries(count, StdDuration::from_secs(30));
        assert_eq!(ds.len(), count, "{} incomplete", node.pid);
    }
    shutdown(nodes);
    let seen = sink.seen.load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        seen > 0,
        "tracer emitted nothing — trace plumbing is disconnected"
    );
    auditor.assert_clean();
}
