//! Real-time chaos tests: a live cluster under partitions and crashes
//! must exhibit the paper's guarantees — minority fail-awareness (§6),
//! majority progress (§4.2), rejoin via the §5 join path — and its
//! flight recordings must pass the offline cross-node audit
//! (view overlap, oal-prefix agreement, ε-causality).
//!
//! Like `cluster.rs`, these spawn real node threads against wall-clock
//! deadlines: they are compile-checked offline but executed only by CI
//! (see tools/shadow/check.sh).

use bytes::Bytes;
use std::time::{Duration as StdDuration, Instant};
use timewheel::Config;
use tw_obs::{analyze, Recording, TraceSet};
use tw_proto::{Duration, ProcessId, Semantics};
use tw_runtime::chaos::recovery_envelope;
use tw_runtime::{ChaosCluster, ChaosOp, ExecutorKind, RecorderSetup};

fn cfg(n: usize) -> Config {
    Config::for_team(n, Duration::from_millis(10))
}

fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tw-chaos-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn form(cluster: &ChaosCluster, n: usize) {
    for rank in 0..n {
        let node = cluster.node(rank).expect("node running");
        assert!(
            node.wait_for_view(n, StdDuration::from_secs(30)).is_some(),
            "rank {rank} never saw the full view"
        );
    }
}

/// Poll `pred` every 25 ms until it holds or `secs` elapse.
fn wait_for(secs: u64, mut pred: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + StdDuration::from_secs(secs);
    while Instant::now() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(StdDuration::from_millis(25));
    }
    false
}

fn analysis_of(paths: &[std::path::PathBuf]) -> tw_obs::Analysis {
    let recordings: Vec<Recording> = paths
        .iter()
        .map(|p| Recording::load(p).expect("load recording"))
        .collect();
    analyze(&TraceSet::new(recordings).expect("trace set"))
}

#[test]
fn partitioned_minority_is_fail_aware_and_rejoins_after_heal() {
    let n = 5;
    let dir = scratch_dir("partition");
    let mut cluster = ChaosCluster::spawn_recorded(
        ExecutorKind::EventLoop,
        cfg(n),
        11,
        &RecorderSetup::new(&dir),
        None,
    )
    .expect("spawn recorded chaos cluster");
    form(&cluster, n);

    let minority = ProcessId(4);
    cluster.apply(
        &ChaosOp::Partition(vec![
            (0..4).map(ProcessId).collect(),
            vec![minority],
        ]),
        0,
    );

    // §6 fail-awareness: the minority member itself notices — from its
    // own watchdog and clock, no oracle — that it is out of date.
    assert!(
        wait_for(10, || cluster
            .status(minority.rank())
            .is_some_and(|s| !s.up_to_date)),
        "minority member never reported out-of-date locally"
    );
    // §4.2 progress: the majority side keeps installing views — here,
    // the view that excludes the unreachable member.
    assert!(
        wait_for(10, || (0..4)
            .all(|r| cluster.status(r).is_some_and(|s| s.view_len == n - 1))),
        "majority never installed the minority-free view"
    );
    // Traffic in the majority view, so the oal advances while the
    // minority is away (exercises the oal-prefix cross-check).
    for k in 0..5 {
        if let Some(node) = cluster.node(k % 4) {
            node.propose(Bytes::from(format!("during-{k}")), Semantics::TOTAL_STRONG);
        }
        std::thread::sleep(StdDuration::from_millis(30));
    }

    cluster.apply(&ChaosOp::HealAll, 1);

    // The healed minority member finds itself excluded and rejoins via
    // the §5 join path; everyone converges back to the full view.
    assert!(
        wait_for(30, || (0..n).all(|r| cluster
            .status(r)
            .is_some_and(|s| s.up_to_date && s.view_len == n))),
        "cluster never reconverged to the full view after heal"
    );

    cluster.flush_recorders();
    let paths = cluster.recording_paths();
    cluster.shutdown();

    let a = analysis_of(&paths);
    assert!(
        a.audits_clean(),
        "offline audit must be clean (incl. oal-prefix): {:?} {:?}",
        a.audit,
        a.cross
    );
    assert!(a.faults.contains_key("cut-link"), "faults: {:?}", a.faults);
    assert!(a.faults.contains_key("heal-link"), "faults: {:?}", a.faults);
}

#[test]
fn crashed_node_restarts_as_fresh_incarnation_and_rejoins() {
    let n = 5;
    let dir = scratch_dir("crash");
    let config = cfg(n);
    let mut cluster = ChaosCluster::spawn_recorded(
        ExecutorKind::Threaded,
        config,
        12,
        &RecorderSetup::new(&dir),
        None,
    )
    .expect("spawn recorded chaos cluster");
    form(&cluster, n);

    let victim = ProcessId(2);
    cluster.apply(&ChaosOp::Crash(victim), 0);
    assert!(cluster.node(victim.rank()).is_none(), "victim must be down");

    // Survivors reconfigure to a 4-member view.
    let survivors: Vec<usize> = (0..n).filter(|&r| r != victim.rank()).collect();
    assert!(
        wait_for(15, || survivors
            .iter()
            .all(|&r| cluster.status(r).is_some_and(|s| s.view_len == n - 1))),
        "survivors never removed the crashed node"
    );

    cluster.apply(&ChaosOp::Restart(victim), 1);
    assert_eq!(cluster.incarnation(victim.rank()), 1, "fresh incarnation");

    assert!(
        wait_for(30, || (0..n).all(|r| cluster
            .status(r)
            .is_some_and(|s| s.up_to_date && s.view_len == n))),
        "restarted node never rejoined the full view"
    );

    cluster.flush_recorders();
    let paths = cluster.recording_paths();
    cluster.shutdown();

    let a = analysis_of(&paths);
    assert!(
        a.audits_clean(),
        "offline audit must be clean: {:?} {:?}",
        a.audit,
        a.cross
    );
    assert!(a.faults.contains_key("crash"), "faults: {:?}", a.faults);
    assert!(a.faults.contains_key("restart"), "faults: {:?}", a.faults);
    // §4.2: the survivors' recovery (suspicion → last install of the
    // victim-free view) fits the analytic envelope; 2× allows for CI
    // scheduler noise on the wall-clock measurement.
    let completed: Vec<_> = a.recoveries.iter().filter_map(|r| r.total()).collect();
    assert!(
        !completed.is_empty(),
        "the crash must produce a completed recovery span"
    );
    let allowed = recovery_envelope(&config) * 2;
    for t in completed {
        assert!(
            t <= allowed,
            "recovery took {} us, envelope×2 is {} us",
            t.as_micros(),
            allowed.as_micros()
        );
    }
}
