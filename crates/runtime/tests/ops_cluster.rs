//! End-to-end checks of the live telemetry plane on real clusters: ops
//! endpoints answer mid-run, `/metrics` carries the protocol counters
//! and the runtime's self-observation signals, `/healthz` reflects §6
//! fail-awareness, and `/trace` decodes through the same `StreamReader`
//! contract as on-disk recordings.

use bytes::Bytes;
use std::time::Duration as StdDuration;
use timewheel::Config;
use tw_obs::{http_get, LiveTail, TraceEvent};
use tw_proto::{Duration, Semantics};
use tw_runtime::{
    spawn_cluster_observed, ChaosCluster, ExecutorKind, Node, OpsSetup,
};

fn cfg(n: usize) -> Config {
    Config::for_team(n, Duration::from_millis(10))
}

fn form_group(nodes: &[Node], n: usize) {
    for node in nodes {
        let v = node
            .wait_for_view(n, StdDuration::from_secs(20))
            .unwrap_or_else(|| panic!("{} never saw the full view", node.pid));
        assert_eq!(v.len(), n);
    }
}

fn shutdown(nodes: Vec<Node>) {
    for n in nodes {
        n.shutdown();
    }
}

const TIMEOUT: StdDuration = StdDuration::from_secs(2);

#[test]
fn ops_endpoints_scrape_mid_run() {
    let n = 3;
    let nodes =
        spawn_cluster_observed(ExecutorKind::EventLoop, cfg(n), &OpsSetup::ephemeral())
            .expect("bind ops endpoints");
    form_group(&nodes, n);
    nodes[0].propose(Bytes::from_static(b"observed"), Semantics::TOTAL_STRONG);
    for node in &nodes {
        let ds = node.wait_for_deliveries(1, StdDuration::from_secs(10));
        assert_eq!(ds.len(), 1, "{} missed the delivery", node.pid);
    }
    for node in &nodes {
        let addr = node.ops_addr().expect("ops endpoint attached");

        // Health: every member settled into an up-to-date view.
        let (code, body) = http_get(addr, "/healthz", TIMEOUT).expect("healthz");
        assert_eq!(code, 200, "{}: {body}", node.pid);

        // Status: the fail-awareness triple as JSON.
        let (code, body) = http_get(addr, "/status", TIMEOUT).expect("status");
        assert_eq!(code, 200);
        assert!(
            body.contains(&format!("\"pid\":{}", node.pid.0)),
            "{body}"
        );
        assert!(body.contains("\"up_to_date\":true"), "{body}");
        assert!(body.contains(&format!("\"view_len\":{n}")), "{body}");

        // Metrics: protocol counters, the pid label, and the runtime
        // self-observation families all render.
        let (code, text) = http_get(addr, "/metrics", TIMEOUT).expect("metrics");
        assert_eq!(code, 200);
        assert!(
            text.contains(&format!("deliveries_total{{pid=\"{}\"}} 1", node.pid.0)),
            "{text}"
        );
        assert!(text.contains("# TYPE tick_lag_us histogram"), "{text}");
        assert!(text.contains("# TYPE tw_inbox_depth gauge"), "{text}");
        assert!(text.contains("tw_recorder_buffered"), "{text}");

        // Unknown paths 404 without killing the server.
        let (code, _) = http_get(addr, "/nope", TIMEOUT).expect("404 path");
        assert_eq!(code, 404);
    }
    shutdown(nodes);
}

#[test]
fn live_trace_stream_decodes_like_a_recording() {
    let n = 3;
    // stream_capacity 1: every event ships as its own segment, so the
    // tailer sees traffic without waiting for a 256-event batch.
    let ops = OpsSetup::ephemeral().stream_capacity(1);
    let nodes = spawn_cluster_observed(ExecutorKind::EventLoop, cfg(n), &ops)
        .expect("bind ops endpoints");
    form_group(&nodes, n);
    let addr = nodes[0].ops_addr().expect("ops endpoint attached");
    let mut tail = LiveTail::connect(addr, TIMEOUT).expect("connect /trace");

    nodes[0].propose(Bytes::from_static(b"tailed"), Semantics::TOTAL_STRONG);
    for node in &nodes {
        let _ = node.wait_for_deliveries(1, StdDuration::from_secs(10));
    }

    // Poll until the delivery shows up in the live stream.
    let deadline = std::time::Instant::now() + StdDuration::from_secs(10);
    let mut saw_delivery = false;
    while std::time::Instant::now() < deadline && !saw_delivery {
        let events = tail.poll(StdDuration::from_millis(100)).expect("clean stream");
        saw_delivery = events
            .iter()
            .any(|e| matches!(e, TraceEvent::Delivered { .. }));
    }
    assert!(saw_delivery, "delivery never appeared on /trace");
    let header = tail.header().expect("TWFR header arrives first");
    assert_eq!(header.pid.0, 0);
    assert_eq!(header.team, n);
    shutdown(nodes);
}

#[test]
fn health_flips_with_fail_awareness_under_chaos() {
    let n = 3;
    let mut cluster =
        ChaosCluster::spawn_observed(ExecutorKind::EventLoop, cfg(n), 7, &OpsSetup::ephemeral());
    // Wait for the group to form and every endpoint to report healthy.
    let deadline = std::time::Instant::now() + StdDuration::from_secs(20);
    let all_healthy = |cluster: &ChaosCluster| {
        (0..n).all(|r| {
            cluster
                .ops_addr(r)
                .and_then(|a| http_get(a, "/healthz", TIMEOUT).ok())
                .is_some_and(|(code, _)| code == 200)
        })
    };
    while std::time::Instant::now() < deadline && !all_healthy(&cluster) {
        std::thread::sleep(StdDuration::from_millis(50));
    }
    assert!(all_healthy(&cluster), "cluster never became healthy");

    // Crash a node: its endpoint vanishes (connection refused), which
    // is the liveness signal; the survivors keep answering.
    cluster.crash(tw_proto::ProcessId(2), 0);
    assert!(cluster.ops_addr(2).is_none());
    for r in 0..2 {
        let addr = cluster.ops_addr(r).expect("survivor endpoint");
        let (code, _) = http_get(addr, "/metrics", TIMEOUT).expect("survivor scrape");
        assert_eq!(code, 200);
    }
    cluster.shutdown();
}
