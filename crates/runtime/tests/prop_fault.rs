//! End-to-end properties of the fault-injection transport: corruption
//! is an omission (never a panic, never a delivered mangled frame), and
//! every fate drawn on a link is a pure function of the fabric seed.

use bytes::Bytes;
use proptest::prelude::*;
use std::sync::Arc;
use tw_obs::FaultKind;
use tw_proto::{ClockSyncMsg, HwTime, Incarnation, Msg, Ordinal, ProcessId, Proposal, Semantics, SyncTime};
use tw_runtime::transport::Incoming;
use tw_runtime::{ChaosNet, FaultTransport, LinkPlan, MemTransport, Transport};

fn arb_msg() -> impl Strategy<Value = Msg> {
    prop_oneof![
        (any::<u64>(), any::<i64>()).prop_map(|(rid, hw)| {
            Msg::ClockSync(ClockSyncMsg::Request {
                sender: ProcessId(0),
                rid,
                hw_send: HwTime(hw),
            })
        }),
        (
            any::<u32>(),
            any::<u64>(),
            any::<i64>(),
            proptest::collection::vec(any::<u8>(), 0..48)
        )
            .prop_map(|(inc, seq, ts, payload)| {
                Msg::Proposal(Proposal {
                    sender: ProcessId(0),
                    incarnation: Incarnation(inc),
                    seq,
                    send_ts: SyncTime(ts),
                    hdo: Ordinal(seq),
                    semantics: Semantics::TOTAL_STRONG,
                    payload: Bytes::from(payload),
                })
            }),
    ]
}

/// Node 0's fault-wrapped transport feeding node 1's inbox.
fn rig(
    seed: u64,
) -> (
    Arc<FaultTransport>,
    crossbeam::channel::Receiver<Incoming>,
    Arc<ChaosNet>,
) {
    let (tx0, _rx0) = crossbeam::channel::unbounded();
    let (tx1, rx1) = crossbeam::channel::unbounded();
    let mem = MemTransport::new(vec![tx0.into(), tx1.into()]);
    let net = ChaosNet::new(seed);
    let t = FaultTransport::new(
        ProcessId(0),
        vec![ProcessId(0), ProcessId(1)],
        mem,
        net.clone(),
        tw_obs::Tracer::disabled(),
    );
    (t, rx1, net)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A fully corrupting link turns every datagram — whatever its
    /// contents — into a counted omission: the decoder is exercised on
    /// the flipped bytes without panicking, and nothing is delivered.
    #[test]
    fn corruption_is_always_a_counted_omission(
        seed in any::<u64>(),
        msgs in proptest::collection::vec(arb_msg(), 1..32),
    ) {
        let (t, rx, net) = rig(seed);
        net.set_default_plan(LinkPlan {
            corrupt_ppm: 1_000_000,
            ..LinkPlan::clean()
        });
        for m in &msgs {
            t.send(ProcessId(1), m);
        }
        prop_assert!(rx.try_iter().next().is_none(), "corrupt frames must be dropped");
        prop_assert_eq!(net.injected(FaultKind::Corrupt), msgs.len() as u64);
    }

    /// Losses are deterministic in the seed and fully accounted for:
    /// same seed → identical survivor sequence, and the drop counter
    /// explains exactly the missing datagrams.
    #[test]
    fn losses_are_seeded_and_counted(
        seed in any::<u64>(),
        drop_ppm in 0u32..=1_000_000,
        msgs in proptest::collection::vec(arb_msg(), 1..48),
    ) {
        let run = || {
            let (t, rx, net) = rig(seed);
            net.set_default_plan(LinkPlan {
                drop_ppm,
                ..LinkPlan::clean()
            });
            for m in &msgs {
                t.send(ProcessId(1), m);
            }
            let got: Vec<Msg> = rx
                .try_iter()
                .map(|i| match i {
                    Incoming::Msg(_, m) => m,
                    other => panic!("unexpected incoming {other:?}"),
                })
                .collect();
            (got, net.injected(FaultKind::Drop))
        };
        let (a, dropped_a) = run();
        let (b, dropped_b) = run();
        prop_assert_eq!(&a, &b, "same seed must reproduce the same fates");
        prop_assert_eq!(dropped_a, dropped_b);
        prop_assert_eq!(a.len() as u64 + dropped_a, msgs.len() as u64);
    }
}
